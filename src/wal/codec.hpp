// Binary codec of the durable event log (DESIGN.md "Durability").
//
// A WAL frame is length-prefixed and CRC32-framed so that a torn tail (the
// process died mid-write, the disk dropped a sector, a byte rotted) is
// *detected* instead of replayed as garbage:
//
//   [u32 payload_len][u32 crc32(payload)][payload_len bytes]
//
// The payload is one event record:
//
//   [u8 type=kEventFrame][u64 seq][f64 timestamp][NodeId (7 bytes)]
//   [u32 message_len][message bytes]
//
// All integers are little-endian, written byte-by-byte so the format is
// identical on any host. `seq` is the log sequence number (LSN): 1-based,
// strictly contiguous within a log — a valid-CRC frame whose seq breaks the
// chain is treated as corruption by the scanner, not silently accepted.
//
// Every decode path is bounds-checked and total: arbitrary bytes NEVER
// crash the decoder (pinned by the fuzz test in tests/test_wal.cpp); they
// produce DecodeStatus::kCorrupt / kTruncated instead. No decode path
// throws — errors travel as values (core::Expected discipline, enforced for
// this directory by desh_lint's `wal-expected` rule).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "logs/record.hpp"
#include "util/bytes.hpp"

namespace desh::wal {

// The byte-level primitives live in util::bytes (shared with the monitor's
// checkpoint blob); the wal namespace re-exports them for its callers.
using util::ByteReader;
using util::put_bytes;
using util::put_f64;
using util::put_u16;
using util::put_u32;
using util::put_u64;
using util::put_u8;

/// Frame payload type tags (u8). Only events exist today; the tag leaves
/// room for control frames without a format break.
inline constexpr std::uint8_t kEventFrame = 1;

/// Hard ceiling on one frame's payload (a console log line is < 1 KiB; a
/// length prefix beyond this is corruption, not a huge record).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// IEEE CRC32 (polynomial 0xEDB88320), the framing checksum.
std::uint32_t crc32(std::string_view bytes);

/// One decoded event frame.
struct EventFrame {
  std::uint64_t seq = 0;
  logs::LogRecord record;
};

/// Appends the framed encoding of (seq, record) to `out`.
void encode_frame(std::uint64_t seq, const logs::LogRecord& record,
                  std::string& out);

enum class DecodeStatus {
  kOk,         // one whole frame decoded; `consumed` bytes were used
  kTruncated,  // the buffer ends mid-frame (a torn tail)
  kCorrupt,    // CRC mismatch, bad type tag, or an impossible length
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kCorrupt;
  std::size_t consumed = 0;  // valid only for kOk
  EventFrame frame;          // valid only for kOk
};

/// Decodes the frame starting at `bytes[0]`. Total: never crashes, never
/// reads out of bounds, never throws — any input yields a DecodeResult.
DecodeResult decode_frame(std::string_view bytes);

}  // namespace desh::wal
