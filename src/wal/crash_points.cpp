#include "wal/crash_points.hpp"

#include <atomic>

namespace desh::wal {
namespace {

// Atomic so a hook installed before server start is visible to the pump
// thread without extra synchronization; the harness never swaps hooks
// while the server is live.
std::atomic<CrashHook> g_hook{nullptr};

}  // namespace

void set_crash_hook(CrashHook hook) {
  // ordering: release pairs with the acquire loads below so a hook set
  // before the server starts is fully constructed when a pump observes it.
  g_hook.store(hook, std::memory_order_release);
}

bool crash_hook_installed() {
  // ordering: acquire pairs with the release store in set_crash_hook.
  return g_hook.load(std::memory_order_acquire) != nullptr;
}

void crash_point(const char* point) {
  // ordering: acquire pairs with the release store in set_crash_hook.
  if (CrashHook hook = g_hook.load(std::memory_order_acquire))
    hook(point);
}

}  // namespace desh::wal
