// Deterministic crash injection for the durability test harness
// (tests/crashsim/). Production code compiles the hook to a null-check
// no-op; the crashsim child installs a hook that calls std::_Exit at the
// Nth hit of a named point, which models an abrupt process death (no
// destructors, no stdio flush) at an exact byte boundary in the WAL's
// write path. Timing-based kills cannot pin a crash between two ::write
// calls; a named point can, which is what makes the torn-tail cases
// reproducible.
//
// Named points (all in src/wal):
//   wal.append.staged      — record framed into the pending buffer, not
//                            yet handed to the kernel
//   wal.flush.partial      — first chunk of a flush written, second not
//   wal.commit.acked       — all bytes written, commit bookkeeping not
//                            yet updated (post-commit-pre-ack)
//   wal.checkpoint.rename  — checkpoint temp file complete, rename pending
#pragma once

namespace desh::wal {

using CrashHook = void (*)(const char* point);

/// Installs (or clears, with nullptr) the process-wide crash hook.
/// Test-only; never called by production code.
void set_crash_hook(CrashHook hook);

/// True once a hook has been installed. Lets the WAL pick crash-safe
/// defaults only when a harness is actually driving it.
bool crash_hook_installed();

/// Fires the hook for `point` if one is installed; a no-op otherwise.
void crash_point(const char* point);

}  // namespace desh::wal
