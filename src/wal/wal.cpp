#include "wal/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "wal/crash_points.hpp"

namespace desh::wal {
namespace {

constexpr std::string_view kSegmentMagic = "DESHWAL1";
constexpr std::string_view kSegmentPrefix = "wal-";
constexpr std::string_view kSegmentSuffix = ".log";
constexpr std::size_t kSeqDigits = 20;
constexpr std::size_t kSegmentHeaderSize = 16;  // magic + u64 start_seq

std::string segment_name(std::uint64_t start_seq) {
  std::string digits = std::to_string(start_seq);
  std::string name(kSegmentPrefix);
  name.append(kSeqDigits - digits.size(), '0');
  name += digits;
  name += kSegmentSuffix;
  return name;
}

bool parse_segment_name(const std::string& name, std::uint64_t& start_seq) {
  if (name.size() != kSegmentPrefix.size() + kSeqDigits +
                         kSegmentSuffix.size())
    return false;
  if (name.compare(0, kSegmentPrefix.size(), kSegmentPrefix) != 0)
    return false;
  if (name.compare(name.size() - kSegmentSuffix.size(),
                   kSegmentSuffix.size(), kSegmentSuffix) != 0)
    return false;
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < kSeqDigits; ++i) {
    const char c = name[kSegmentPrefix.size() + i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  start_seq = value;
  return true;
}

std::vector<std::pair<std::uint64_t, std::filesystem::path>> list_segments(
    const std::filesystem::path& dir) {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint64_t start_seq = 0;
    if (parse_segment_name(entry.path().filename().string(), start_seq))
      found.emplace_back(start_seq, entry.path());
  }
  std::sort(found.begin(), found.end());
  return found;
}

core::Error io_error(const std::string& what,
                     const std::filesystem::path& path) {
  return core::Error{core::ErrorCode::kIo,
                     what + " " + path.string() + ": " +
                         std::strerror(errno)};
}

/// ::write the whole buffer, restarting on EINTR.
core::Expected<void> write_fully(int fd, const char* data, std::size_t size,
                                 const std::filesystem::path& path) {
  std::size_t written = 0;
  while (written < size) {
    const ::ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("write", path);
    }
    written += static_cast<std::size_t>(n);
  }
  return {};
}

}  // namespace

core::Expected<std::unique_ptr<DurableLog>> DurableLog::open(
    const LogOptions& options,
    std::function<bool(const CheckpointData&)> checkpoint_acceptable) {
  if (options.directory.empty())
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "wal: directory must not be empty"};
  std::error_code ec;
  std::filesystem::create_directories(options.directory, ec);
  if (ec)
    return core::Error{core::ErrorCode::kIo,
                       "wal: cannot create " + options.directory.string() +
                           ": " + ec.message()};
  // std::make_unique needs a public ctor; the factory is the only caller.
  std::unique_ptr<DurableLog> log(new DurableLog());
  log->options_ = options;
  if (log->options_.flush_every_records == 0)
    log->options_.flush_every_records = 1;

  core::Expected<CheckpointData> checkpoint = load_latest_checkpoint(
      options.directory, std::move(checkpoint_acceptable));
  if (!checkpoint.ok()) return checkpoint.error();
  log->recovered_.checkpoint = std::move(checkpoint).value();
  log->recovered_.checkpoint_seq = log->recovered_.checkpoint.seq;
  log->last_checkpoint_seq_ = log->recovered_.checkpoint_seq;

  core::Expected<void> scanned = log->scan_segments();
  if (!scanned.ok()) return scanned.error();
  return log;
}

DurableLog::~DurableLog() {
  // Best-effort tail flush; an error here has no caller to report to and
  // recovery treats the unflushed suffix as a (detectable) torn tail.
  if (pending_count_ > 0) static_cast<void>(flush());
  if (fd_ >= 0) ::close(fd_);
}

core::Expected<void> DurableLog::open_segment(std::uint64_t start_seq) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::filesystem::path path =
      options_.directory / segment_name(start_seq);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return io_error("open", path);
  std::string header(kSegmentMagic);
  put_u64(header, start_seq);
  core::Expected<void> wrote =
      write_fully(fd, header.data(), header.size(), path);
  if (!wrote.ok()) {
    ::close(fd);
    return wrote.error();
  }
  fd_ = fd;
  fd_path_ = path;
  return {};
}

core::Expected<void> DurableLog::scan_segments() {
  const std::uint64_t K = recovered_.checkpoint_seq;
  std::uint64_t last_valid = K;
  auto segments = list_segments(options_.directory);
  std::error_code ec;

  std::filesystem::path writable;  // last segment that survived the scan
  bool stop = false;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& [named_start, path] = segments[i];
    if (stop || named_start > last_valid + 1) {
      // Either the scan already hit corruption, or this segment starts
      // past the contiguous frontier (a stale leftover). Unreachable at
      // replay time — drop it.
      recovered_.torn_frames += 1;
      std::filesystem::remove(path, ec);
      continue;
    }
    ++recovered_.segments_scanned;
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string bytes = buffer.str();
    if (bytes.size() < kSegmentHeaderSize ||
        std::string_view(bytes).substr(0, kSegmentMagic.size()) !=
            kSegmentMagic) {
      recovered_.torn_frames += 1;
      std::filesystem::remove(path, ec);
      stop = true;
      continue;
    }
    ByteReader header(
        std::string_view(bytes).substr(kSegmentMagic.size(), 8));
    std::uint64_t header_start = 0;
    if (!header.get_u64(header_start) || header_start != named_start) {
      recovered_.torn_frames += 1;
      std::filesystem::remove(path, ec);
      stop = true;
      continue;
    }
    std::size_t offset = kSegmentHeaderSize;
    std::uint64_t expect_seq = named_start;
    bool torn = false;
    while (offset < bytes.size()) {
      const DecodeResult frame =
          decode_frame(std::string_view(bytes).substr(offset));
      if (frame.status != DecodeStatus::kOk ||
          frame.frame.seq != expect_seq) {
        torn = true;
        break;
      }
      if (frame.frame.seq > last_valid && frame.frame.seq > K)
        recovered_.tail.push_back(frame.frame);
      last_valid = std::max(last_valid, frame.frame.seq);
      ++expect_seq;
      offset += frame.consumed;
    }
    if (torn) {
      // Cut the segment back to its last whole frame; everything after
      // the tear (including later segments) is unrecoverable.
      recovered_.torn_frames += 1;
      std::filesystem::resize_file(path, offset, ec);
      stop = true;
    }
    writable = path;
  }

  recovered_.last_seq = last_valid;
  next_seq_ = last_valid + 1;
  committed_seq_ = last_valid;

  if (!writable.empty()) {
    const int fd = ::open(writable.c_str(), O_WRONLY | O_APPEND);
    if (fd < 0) return io_error("open", writable);
    fd_ = fd;
    fd_path_ = writable;
    return {};
  }
  return open_segment(next_seq_);
}

std::uint64_t DurableLog::append(const logs::LogRecord& record) {
  const std::uint64_t seq = next_seq_++;
  encode_frame(seq, record, pending_);
  ++pending_count_;
  ++counters_.appended;
  crash_point("wal.append.staged");
  return seq;
}

core::Expected<void> DurableLog::flush() {
  if (pending_count_ == 0) return {};
  // Two ::write calls with a crash point between them: an injected death
  // at wal.flush.partial leaves a torn frame on disk *organically* (real
  // kernel-visible bytes, not a synthetic mutation), which is exactly the
  // artifact recovery must truncate away.
  const std::size_t half = pending_.size() / 2;
  const std::uint64_t through_seq = next_seq_ - 1;
  core::Expected<void> first =
      write_fully(fd_, pending_.data(), half, fd_path_);
  if (first.ok()) crash_point("wal.flush.partial");
  core::Expected<void> second =
      first.ok()
          ? write_fully(fd_, pending_.data() + half, pending_.size() - half,
                        fd_path_)
          : first;
  // Whatever happened, the staged buffer is spent: on an I/O error the
  // segment tail may now be torn, and retrying the same bytes would only
  // duplicate frames. Recovery detects and truncates the tear instead.
  pending_.clear();
  pending_count_ = 0;
  if (!second.ok()) return second.error();
  crash_point("wal.commit.acked");
  committed_seq_ = through_seq;
  ++counters_.flushes;
  return {};
}

core::Expected<bool> DurableLog::maybe_flush() {
  if (pending_count_ < options_.flush_every_records) return false;
  core::Expected<void> flushed = flush();
  if (!flushed.ok()) return flushed.error();
  return true;
}

core::Expected<void> DurableLog::write_checkpoint_and_rotate(
    std::vector<std::pair<std::string, std::string>> sections) {
  // Flush FIRST: the recovery invariant requires every record folded into
  // the checkpoint to already be durable in the log.
  core::Expected<void> flushed = flush();
  if (!flushed.ok()) return flushed.error();

  CheckpointData data;
  data.seq = committed_seq_;
  data.sections = std::move(sections);
  core::Expected<void> wrote = write_checkpoint(options_.directory, data);
  if (!wrote.ok()) return wrote.error();
  last_checkpoint_seq_ = data.seq;
  ++counters_.checkpoints;

  core::Expected<void> rotated = open_segment(next_seq_);
  if (!rotated.ok()) return rotated.error();

  // GC: keep the newest checkpoints, then drop every segment whose entire
  // seq range is covered by the oldest survivor (its successor segment
  // starts at or before oldest_kept + 1).
  const std::uint64_t oldest_kept =
      gc_checkpoints(options_.directory, options_.keep_checkpoints);
  auto segments = list_segments(options_.directory);
  std::error_code ec;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first <= oldest_kept + 1)
      std::filesystem::remove(segments[i].second, ec);
  }
  return {};
}

}  // namespace desh::wal
