// Append-only durable event log with checkpoint-anchored recovery
// (DESIGN.md "Durability").
//
// On disk a log is a directory of segment files plus checkpoint files:
//
//   wal-<start_seq, zero-padded to 20>.log   (codec.hpp frames)
//   ckpt-<seq, zero-padded to 20>.ckpt       (checkpoint.hpp)
//
// Each segment opens with a 16-byte header — "DESHWAL1" magic + u64
// start_seq (LE) — followed by CRC32-framed event records whose sequence
// numbers run contiguously from start_seq. Segments rotate at every
// checkpoint, so only the *last* segment can ever hold a torn tail: all
// earlier segments were sealed by a completed flush.
//
// Write path (group commit): append() frames the record into an in-memory
// pending buffer and assigns the next seq; flush() hands the whole buffer
// to the kernel with POSIX ::write and only then advances committed_seq.
// A record is DURABLE (will survive an abrupt process death) exactly when
// committed_seq >= its seq — callers that acknowledge work downstream must
// gate on committed_seq (the serve driver in tests/crashsim does).
//
// Recovery invariant: a checkpoint at seq K is only ever written after the
// log is flushed through K. Hence committed_seq >= checkpoint_seq at all
// times, and restart = load newest valid checkpoint (K) + replay frames
// (K, last_valid]. Replaying through the same deterministic observe path
// reproduces the pre-crash decision stream byte-for-byte — pinned by
// tests/crashsim.
//
// Threading: DurableLog is NOT internally synchronized. The serve
// integration drives it only from the pump-serialized section of
// InferenceServer::pump (same contract as pipeline_/monitor_); standalone
// users must serialize calls themselves.
//
// Durability scope: flushes reach the kernel page cache (::write), which
// survives any process death — the failure model Desh's monitor restart
// story (and the crashsim harness) is about. Surviving a kernel panic or
// power cut would additionally need fdatasync per group commit; see
// DESIGN.md for why that trade was made.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/expected.hpp"
#include "logs/record.hpp"
#include "wal/checkpoint.hpp"
#include "wal/codec.hpp"

namespace desh::wal {

struct LogOptions {
  std::filesystem::path directory;
  /// Group-commit interval: maybe_flush() flushes once this many records
  /// are pending. 1 = flush every record (slow, minimal loss window).
  std::size_t flush_every_records = 64;
  /// How many checkpoints survive GC (older ones + their segments drop).
  std::size_t keep_checkpoints = 2;
};

/// Everything open() reconstructed from disk.
struct RecoveredState {
  /// K: highest seq folded into the restored checkpoint (0 = none found).
  std::uint64_t checkpoint_seq = 0;
  /// Highest contiguous valid seq found across checkpoint and log.
  std::uint64_t last_seq = 0;
  /// Records in (checkpoint_seq, last_seq], ready to replay in order.
  std::vector<EventFrame> tail;
  /// Section blobs from the restored checkpoint (empty when none).
  CheckpointData checkpoint;
  /// Invalid frames discarded at the tail (torn writes, bit rot).
  std::uint64_t torn_frames = 0;
  /// Segment files visited during the scan.
  std::uint64_t segments_scanned = 0;
};

/// Monotonic write-path counters, cheap to copy out for metrics.
struct LogCounters {
  std::uint64_t appended = 0;
  std::uint64_t flushes = 0;
  std::uint64_t checkpoints = 0;
};

class DurableLog {
 public:
  /// Opens (creating the directory if needed) and recovers the log.
  /// `checkpoint_acceptable` lets the caller veto stale checkpoints (wrong
  /// vocab size, wrong format) — vetoed ones fall back to older files or
  /// to full replay from seq 1. Pass nullptr to accept any valid file.
  static core::Expected<std::unique_ptr<DurableLog>> open(
      const LogOptions& options,
      std::function<bool(const CheckpointData&)> checkpoint_acceptable);

  ~DurableLog();
  DurableLog(const DurableLog&) = delete;
  DurableLog& operator=(const DurableLog&) = delete;

  const RecoveredState& recovered() const { return recovered_; }
  const LogCounters& counters() const { return counters_; }

  /// Stages `record` in the pending buffer; returns its assigned seq.
  /// Not durable until the next flush().
  std::uint64_t append(const logs::LogRecord& record);

  /// Writes every pending record to the segment. On success,
  /// committed_seq() == the last appended seq.
  core::Expected<void> flush();

  /// Group commit: flush() iff pending_records() >= flush_every_records.
  /// Returns whether a flush happened.
  core::Expected<bool> maybe_flush();

  /// Flushes, then writes a checkpoint at committed_seq() with `sections`,
  /// rotates to a fresh segment, and GCs checkpoints + fully-covered
  /// segments. The flush-before-write ordering is what maintains the
  /// recovery invariant (committed_seq >= checkpoint_seq).
  core::Expected<void> write_checkpoint_and_rotate(
      std::vector<std::pair<std::string, std::string>> sections);

  std::uint64_t next_seq() const { return next_seq_; }
  /// Highest seq guaranteed durable (all records <= it are on disk).
  std::uint64_t committed_seq() const { return committed_seq_; }
  std::uint64_t pending_records() const { return pending_count_; }
  std::uint64_t last_checkpoint_seq() const { return last_checkpoint_seq_; }

 private:
  DurableLog() = default;

  core::Expected<void> open_segment(std::uint64_t start_seq);
  core::Expected<void> scan_segments();

  LogOptions options_;
  RecoveredState recovered_;
  LogCounters counters_;

  int fd_ = -1;                      // current segment, append position
  std::filesystem::path fd_path_;    // its path (for error messages)
  std::string pending_;              // staged frames awaiting group commit
  std::uint64_t pending_count_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t committed_seq_ = 0;
  std::uint64_t last_checkpoint_seq_ = 0;
};

}  // namespace desh::wal
