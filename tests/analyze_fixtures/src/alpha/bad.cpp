// Fixture: a low layer reaching up — layers.contract does not allow
// alpha -> beta, so this include is exactly one layering finding (and no
// code comment can waive it).
#include "beta/api.hpp"

namespace alpha {

int base_value() { return beta::api_value() - 1; }

}  // namespace alpha
