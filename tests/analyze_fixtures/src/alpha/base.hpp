// Fixture: the low layer. beta may include alpha (declared); alpha must
// not include beta.
#pragma once

namespace alpha {

int base_value();

}  // namespace alpha
