// Fixture: the high layer. Its include of alpha/base.hpp is the declared
// (allowed) beta -> alpha edge.
#pragma once

#include "alpha/base.hpp"

namespace beta {

int api_value();

}  // namespace beta
