#include "block/worker.hpp"

#include <chrono>
#include <thread>

namespace block {

void Worker::slow() {
  util::LockGuard lk(mu_);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void Worker::slow_waived() {
  util::LockGuard lk(mu_);
  // desh-analyze: allow(blocking-under-lock) fixture: deliberate nap to
  // prove justified waivers suppress the finding
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void Worker::odd(util::Mutex& which) {
  util::LockGuard lk(which);
}

}  // namespace block
