// Fixture: blocking-under-lock and unresolved-lock seeds.
//   slow()        sleeps while holding mu_ — one ACTIVE finding.
//   slow_waived() the identical pattern behind a justified
//                 `desh-analyze: allow(...)` — reported but waived.
//   odd()         acquires through a reference the extractor cannot
//                 resolve — one unresolved-lock finding.
#pragma once

#include "util/sync.hpp"

namespace block {

class Worker {
 public:
  void slow();
  void slow_waived();
  void odd(util::Mutex& which);

 private:
  util::Mutex mu_;
};

}  // namespace block
