#include "cycle/ab.hpp"

namespace cycle {

void AB::first() {
  util::LockGuard a(left_);
  util::LockGuard b(right_);
}

void AB::second() {
  util::LockGuard b(right_);
  util::LockGuard a(left_);
}

}  // namespace cycle
