// Fixture: two locks taken in opposite orders by the two methods in
// cycle/ab.cpp — desh_analyze must report exactly one lock-order cycle.
// Neither lock is named in the fixture lock_order.contract, so the cycle
// detector (not the contract check) owns this finding.
#pragma once

#include "util/sync.hpp"

namespace cycle {

class AB {
 public:
  void first();
  void second();

 private:
  util::Mutex left_;
  util::Mutex right_;
};

}  // namespace cycle
