#include "order/svc.hpp"

namespace order {

void Svc::wrong() {
  util::LockGuard in(inner_);
  util::LockGuard out(outer_);
}

}  // namespace order
