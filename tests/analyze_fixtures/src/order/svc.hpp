// Fixture: the lock_order.contract declares `order order.outer ->
// order.inner`, and wrong() in order/svc.cpp acquires them the other way
// around — desh_analyze must report exactly one "contradicts the declared
// order" lock-order finding.
#pragma once

#include "util/sync.hpp"

namespace order {

class Svc {
 public:
  void wrong();

 private:
  util::Mutex outer_;
  util::Mutex inner_;
};

}  // namespace order
