# Expected-to-fail compile check for the thread-safety annotations.
# Invoked by ctest (label `lint`) as:
#   cmake -DCLANGXX=<clang++> -DREPO_SRC=<repo>/src -DCASE_DIR=<this dir>
#         -P check.cmake
# Passes iff the positive control compiles AND the violation case is
# rejected *by the thread-safety analysis* (not by an unrelated error).
set(FLAGS -std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety
    -I${REPO_SRC})

execute_process(
  COMMAND ${CLANGXX} ${FLAGS} ${CASE_DIR}/guarded_access_ok.cpp
  RESULT_VARIABLE ok_result
  ERROR_VARIABLE ok_stderr)
if(NOT ok_result EQUAL 0)
  message(FATAL_ERROR
    "positive control failed to compile — toolchain problem, the "
    "expected-failure below would prove nothing:\n${ok_stderr}")
endif()

execute_process(
  COMMAND ${CLANGXX} ${FLAGS} ${CASE_DIR}/guarded_access_violation.cpp
  RESULT_VARIABLE bad_result
  ERROR_VARIABLE bad_stderr)
if(bad_result EQUAL 0)
  message(FATAL_ERROR
    "unannotated guarded access COMPILED — the thread-safety analysis is "
    "not rejecting violations")
endif()
if(NOT bad_stderr MATCHES "thread-safety")
  message(FATAL_ERROR
    "violation case failed for the wrong reason (expected a thread-safety "
    "diagnostic):\n${bad_stderr}")
endif()
message(STATUS "thread-safety analysis rejects unannotated guarded access")
