// Positive control for check.cmake: identical shape to the violation case,
// but the guarded field is read under its lock — must compile clean. If
// this fails, the toolchain (not the annotation) is broken, and the
// expected-failure result from the violation case would prove nothing.
#include "util/sync.hpp"

class Account {
 public:
  int balance() const {
    desh::util::LockGuard lock(mu_);
    return balance_;
  }

 private:
  mutable desh::util::Mutex mu_;
  int balance_ DESH_GUARDED_BY(mu_) = 0;
};

int probe() { return Account{}.balance(); }
