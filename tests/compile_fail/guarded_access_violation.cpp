// MUST NOT COMPILE under clang -Wthread-safety -Werror=thread-safety:
// reads a DESH_GUARDED_BY field without holding its mutex. The paired
// check.cmake asserts the rejection actually happens (a no-op macro
// expansion would let this slip through silently).
#include "util/sync.hpp"

class Account {
 public:
  int balance() const { return balance_; }  // BAD: mu_ not held

 private:
  mutable desh::util::Mutex mu_;
  int balance_ DESH_GUARDED_BY(mu_) = 0;
};

int probe() { return Account{}.balance(); }
