// crashsim child: the process the crash-injection harness kills and
// restarts (tests/crashsim/test_crashsim.cpp is the driver).
//
// It serves an input stream through a WAL-enabled InferenceServer in
// manual-pump mode, one record per pump, and writes every DURABLE decision
// to the alerts file: an alert is acknowledged only once
// wal_stats().committed_seq covers the record that raised it — exactly the
// contract a real downstream consumer must follow. On startup it first
// acknowledges the replayed alert stream (durable by definition), then
// resumes the input from the first un-logged record.
//
// --crash POINT:N installs a wal crash hook that calls std::_Exit(42) on
// the Nth hit of the named point — an abrupt death with no destructors, no
// flushes, no atexit: the closest a unit test gets to kill -9 while keeping
// the run deterministic.
//
// Protocol (all files line-oriented):
//   input:  <hexfloat ts>\t<node>\t<message>          one record per line
//   alerts: <seq>|<node>|<hexfloat time>|<hexfloat lead>|<hexfloat score>|
//           <message>                                  appended, ack-order
//   status: checkpoint_seq=K committed_seq=C applied_seq=A replayed=R
//           torn=T                                     written post-restore
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/persistence.hpp"
#include "logs/record.hpp"
#include "serve/server.hpp"
#include "wal/crash_points.hpp"

namespace {

const char* g_crash_point = nullptr;  // null = never crash
int g_crash_on_hit = 0;
int g_hits = 0;

void crash_hook(const char* point) {
  if (g_crash_point != nullptr && std::strcmp(point, g_crash_point) == 0 &&
      ++g_hits == g_crash_on_hit)
    std::_Exit(42);
}

int fail(const std::string& message) {
  std::fprintf(stderr, "crashsim_child: %s\n", message.c_str());
  return 1;
}

std::optional<std::vector<desh::logs::LogRecord>> read_input(
    const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  std::vector<desh::logs::LogRecord> records;
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t tab1 = line.find('\t');
    const std::size_t tab2 =
        tab1 == std::string::npos ? tab1 : line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) return std::nullopt;
    desh::logs::LogRecord record;
    record.timestamp = std::strtod(line.c_str(), nullptr);
    if (!desh::logs::NodeId::try_parse(
            std::string_view(line).substr(tab1 + 1, tab2 - tab1 - 1),
            record.node))
      return std::nullopt;
    record.message = line.substr(tab2 + 1);
    records.push_back(std::move(record));
  }
  return records;
}

std::string alert_line(std::uint64_t seq,
                       const desh::core::MonitorAlert& alert) {
  char numbers[128];
  std::snprintf(numbers, sizeof numbers, "%llu|%s|%a|%a|%a|",
                static_cast<unsigned long long>(seq),
                alert.node.to_string().c_str(), alert.time,
                alert.predicted_lead_seconds, alert.score);
  return std::string(numbers) + alert.message;
}

}  // namespace

int main(int argc, char** argv) {
  std::string pipeline_dir, wal_dir, input_path, alerts_path, status_path;
  std::size_t flush_every = 4;
  std::size_t checkpoint_every = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--pipeline") pipeline_dir = next();
    else if (arg == "--wal") wal_dir = next();
    else if (arg == "--input") input_path = next();
    else if (arg == "--alerts") alerts_path = next();
    else if (arg == "--status") status_path = next();
    else if (arg == "--flush-every") flush_every = std::strtoull(next(), nullptr, 10);
    else if (arg == "--checkpoint-every") checkpoint_every = std::strtoull(next(), nullptr, 10);
    else if (arg == "--crash") {
      static std::string spec;  // must outlive main's loop (g_crash_point)
      spec = next();
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos)
        return fail("--crash expects POINT:N");
      g_crash_on_hit = std::atoi(spec.c_str() + colon + 1);
      spec.resize(colon);
      g_crash_point = spec.c_str();
    } else {
      return fail("unknown argument: " + arg);
    }
  }
  if (pipeline_dir.empty() || wal_dir.empty() || input_path.empty() ||
      alerts_path.empty() || status_path.empty())
    return fail(
        "usage: crashsim_child --pipeline DIR --wal DIR --input FILE "
        "--alerts FILE --status FILE [--crash POINT:N] [--flush-every N] "
        "[--checkpoint-every N]");

  const auto input = read_input(input_path);
  if (!input) return fail("cannot read input " + input_path);

  desh::core::Expected<desh::core::DeshPipeline> pipeline =
      desh::core::try_load_pipeline(pipeline_dir);
  if (!pipeline.ok()) return fail(pipeline.error().message);

  desh::wal::set_crash_hook(&crash_hook);

  desh::serve::ServeConfig config;
  config.queue_capacity = 16;
  config.max_batch = 1;  // one record per pump: exact alert->seq attribution
  config.start_collector = false;
  config.wal.directory = wal_dir;
  config.wal.flush_every_records = flush_every;
  config.wal.checkpoint_every_records = checkpoint_every;
  desh::core::Expected<std::unique_ptr<desh::serve::InferenceServer>>
      created = desh::serve::InferenceServer::create(pipeline.value(), config);
  if (!created.ok()) return fail(created.error().message);
  desh::serve::InferenceServer& server = *created.value();

  const desh::serve::InferenceServer::WalStats restored = server.wal_stats();
  {
    std::ofstream status(status_path, std::ios::trunc);
    status << "checkpoint_seq=" << restored.checkpoint_seq
           << " committed_seq=" << restored.committed_seq
           << " applied_seq=" << restored.applied_seq
           << " replayed=" << restored.replayed
           << " torn=" << restored.torn_frames << "\n";
  }

  std::ofstream alerts(alerts_path, std::ios::trunc);
  if (!alerts) return fail("cannot write " + alerts_path);
  // The replayed decision stream is durable by construction: every one of
  // these alerts came from a record at seq <= committed_seq.
  for (const auto& [seq, alert] : server.wal_replayed_alerts())
    alerts << alert_line(seq, alert) << "\n";
  alerts.flush();

  // Resume after the last logged record. Input line i (0-based) carries
  // WAL seq i+1: the server assigns seqs contiguously from 1 in submit
  // order, and manual mode pumps exactly what was submitted.
  std::vector<std::pair<std::uint64_t, std::string>> unacked;
  for (std::size_t i = restored.applied_seq; i < input->size(); ++i) {
    if (server.submit((*input)[i]) != desh::serve::Admission::kAccepted)
      return fail("submit refused at record " + std::to_string(i));
    server.pump();
    const std::uint64_t seq = static_cast<std::uint64_t>(i) + 1;
    for (const desh::core::MonitorAlert& alert : server.poll_alerts())
      unacked.emplace_back(seq, alert_line(seq, alert));
    // Acknowledge only what the group commit has made durable — an alert
    // written here must survive any later crash point.
    const std::uint64_t committed = server.wal_stats().committed_seq;
    while (!unacked.empty() && unacked.front().first <= committed) {
      alerts << unacked.front().second << "\n";
      alerts.flush();
      unacked.erase(unacked.begin());
    }
  }
  server.stop();  // flushes the WAL tail: everything becomes durable
  const std::uint64_t committed = server.wal_stats().committed_seq;
  while (!unacked.empty() && unacked.front().first <= committed) {
    alerts << unacked.front().second << "\n";
    alerts.flush();
    unacked.erase(unacked.begin());
  }
  if (!unacked.empty())
    return fail("records left unacked after a clean stop");
  return 0;
}
