// Crash-injection harness (the proof of DESIGN.md "Durability"): runs the
// WAL-enabled serve loop as a child process (crashsim_child.cpp), kills it
// at every named crash point — mid-append, mid-flush (a torn frame on
// disk), post-commit-pre-ack, mid-checkpoint-rename — and on
// torn/truncated/bit-flipped log tails, restarts it, and asserts the
// durable decision stream is byte-identical to an uninterrupted golden
// run.
//
// The durability contract under test: an alert acknowledged by the child
// (written to its alerts file) came from a committed record, so after ANY
// abrupt death the union of pre-crash acknowledgements and the restarted
// run's output — deduplicated by WAL seq — must equal the golden stream
// exactly, line for line, hexfloat for hexfloat.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "desh.hpp"
#include "logs/generator.hpp"

namespace desh {
namespace {

namespace fs = std::filesystem;

using core::DeshPipeline;
using core::MonitorAlert;
using core::StreamingMonitor;

/// Must match crashsim_child.cpp's alert_line byte for byte.
std::string alert_line(std::uint64_t seq, const MonitorAlert& alert) {
  char numbers[128];
  std::snprintf(numbers, sizeof numbers, "%llu|%s|%a|%a|%a|",
                static_cast<unsigned long long>(seq),
                alert.node.to_string().c_str(), alert.time,
                alert.predicted_lead_seconds, alert.score);
  return std::string(numbers) + alert.message;
}

std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream is(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::uint64_t line_seq(const std::string& line) {
  return std::strtoull(line.c_str(), nullptr, 10);
}

class CrashSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    root_ = new fs::path(fs::path(::testing::TempDir()) / "desh_crashsim");
    fs::remove_all(*root_);
    fs::create_directories(*root_);

    logs::SyntheticCraySource source(logs::profile_tiny(2024));
    logs::SyntheticLog log = source.generate();
    auto [train, test] =
        core::split_corpus(log.records, log.truth.split_time);
    ASSERT_GT(test.size(), 200u) << "stream too short for the crash points";
    core::DeshConfig config;
    config.phase1.epochs = 1;
    DeshPipeline pipeline(config);
    pipeline.fit(train);
    ASSERT_TRUE(
        core::try_save_pipeline(pipeline, (*root_ / "pipeline").string())
            .ok());

    {  // the input stream, one record per line (see the child's protocol)
      std::ofstream os(*root_ / "input.txt");
      for (const logs::LogRecord& record : test) {
        char ts[64];
        std::snprintf(ts, sizeof ts, "%a", record.timestamp);
        os << ts << "\t" << record.node.to_string() << "\t" << record.message
           << "\n";
      }
    }

    // The golden decision stream, computed in-process: what every
    // crash+restart combination must reconstruct exactly.
    golden_ = new std::vector<std::string>();
    StreamingMonitor monitor(pipeline);
    std::uint64_t seq = 0;
    for (const logs::LogRecord& record : test) {
      ++seq;
      if (auto alert = monitor.observe(record))
        golden_->push_back(alert_line(seq, *alert));
    }
    ASSERT_FALSE(golden_->empty()) << "fixture stream never alerted";
  }
  static void TearDownTestSuite() {
    fs::remove_all(*root_);
    delete golden_;
    delete root_;
  }

  void SetUp() override {
    case_dir_ = *root_ / ::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name();
    fs::create_directories(case_dir_);
  }

  /// Runs the child once; returns its exit code (42 = injected crash).
  int run_child(const std::string& alerts_name,
                const std::string& crash_spec = "") {
    std::string command = std::string(CRASHSIM_CHILD_BIN) +
                          " --pipeline " + (*root_ / "pipeline").string() +
                          " --wal " + (case_dir_ / "wal").string() +
                          " --input " + (*root_ / "input.txt").string() +
                          " --alerts " + (case_dir_ / alerts_name).string() +
                          " --status " + (case_dir_ / "status.txt").string();
    if (!crash_spec.empty()) command += " --crash " + crash_spec;
    const int status = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << "child did not exit normally";
    return WEXITSTATUS(status);
  }

  /// Dedups run1's acknowledged lines with run2's output by WAL seq
  /// (overlapping seqs must carry identical bytes) and asserts the merged,
  /// seq-ordered stream equals the golden run.
  void expect_merged_equals_golden(const std::vector<std::string>& run1,
                                   const std::vector<std::string>& run2) {
    std::map<std::uint64_t, std::string> by_seq;
    for (const std::string& line : run1) by_seq.emplace(line_seq(line), line);
    for (const std::string& line : run2) {
      const auto [it, inserted] = by_seq.emplace(line_seq(line), line);
      // A decision acknowledged before the crash and re-derived after the
      // restart must be the SAME decision, bit for bit.
      if (!inserted) {
        EXPECT_EQ(it->second, line)
            << "restart changed an already-acknowledged decision";
      }
    }
    std::vector<std::string> merged;
    for (const auto& [seq, line] : by_seq) merged.push_back(line);
    EXPECT_EQ(merged, *golden_);
  }

  /// One full crash/restart cycle at a named crash point.
  void run_crash_cycle(const std::string& crash_spec) {
    ASSERT_EQ(run_child("alerts1.txt", crash_spec), 42)
        << crash_spec << " never fired";
    const std::vector<std::string> run1 =
        read_lines(case_dir_ / "alerts1.txt");
    // The crash landed mid-stream: the pre-crash process must not already
    // have acknowledged the whole golden stream.
    EXPECT_LT(run1.size(), golden_->size());
    ASSERT_EQ(run_child("alerts2.txt"), 0);
    expect_merged_equals_golden(run1, read_lines(case_dir_ / "alerts2.txt"));
  }

  /// The newest WAL segment file in this case's log directory.
  fs::path last_segment() {
    fs::path last;
    for (const auto& entry : fs::directory_iterator(case_dir_ / "wal"))
      if (entry.path().extension() == ".log" &&
          (last.empty() || entry.path().filename() > last.filename()))
        last = entry.path();
    EXPECT_FALSE(last.empty());
    return last;
  }

  static fs::path* root_;
  static std::vector<std::string>* golden_;
  fs::path case_dir_;
};

fs::path* CrashSimTest::root_ = nullptr;
std::vector<std::string>* CrashSimTest::golden_ = nullptr;

// --- baseline -------------------------------------------------------------

TEST_F(CrashSimTest, UninterruptedRunMatchesTheInProcessGolden) {
  ASSERT_EQ(run_child("alerts.txt"), 0);
  EXPECT_EQ(read_lines(case_dir_ / "alerts.txt"), *golden_);
  // A restart of the cleanly-stopped log re-derives only the post-checkpoint
  // tail (alerts folded into the checkpoint were delivered already, and the
  // fuzzy monitor blob does not re-raise them) — the union with the first
  // run's acknowledgements is still the exact golden stream.
  ASSERT_EQ(run_child("alerts_again.txt"), 0);
  expect_merged_equals_golden(read_lines(case_dir_ / "alerts.txt"),
                              read_lines(case_dir_ / "alerts_again.txt"));
}

// --- named crash points ---------------------------------------------------

TEST_F(CrashSimTest, SurvivesDeathMidAppend) {
  run_crash_cycle("wal.append.staged:137");
}

TEST_F(CrashSimTest, SurvivesDeathMidFlushWithATornFrameOnDisk) {
  run_crash_cycle("wal.flush.partial:30");
}

TEST_F(CrashSimTest, SurvivesDeathAfterCommitBeforeAcknowledgement) {
  run_crash_cycle("wal.commit.acked:25");
}

TEST_F(CrashSimTest, SurvivesDeathMidCheckpointRename) {
  run_crash_cycle("wal.checkpoint.rename:2");
}

// --- corrupted tails ------------------------------------------------------
// Each case starts from a mid-stream crash (so the log has a live tail),
// damages the newest artifacts the way real storage does, and restarts.

TEST_F(CrashSimTest, SurvivesATruncatedLogTail) {
  ASSERT_EQ(run_child("alerts1.txt", "wal.commit.acked:25"), 42);
  const fs::path segment = last_segment();
  fs::resize_file(segment, fs::file_size(segment) - 3);
  ASSERT_EQ(run_child("alerts2.txt"), 0);
  expect_merged_equals_golden(read_lines(case_dir_ / "alerts1.txt"),
                              read_lines(case_dir_ / "alerts2.txt"));
}

TEST_F(CrashSimTest, SurvivesABitFlippedLogTail) {
  ASSERT_EQ(run_child("alerts1.txt", "wal.commit.acked:25"), 42);
  const fs::path segment = last_segment();
  const std::uintmax_t size = fs::file_size(segment);
  ASSERT_GT(size, 16u);
  {
    std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(size - 10));
    char byte = 0;
    f.get(byte);
    f.seekp(static_cast<std::streamoff>(size - 10));
    f.put(static_cast<char>(byte ^ 0x20));
  }
  ASSERT_EQ(run_child("alerts2.txt"), 0);
  expect_merged_equals_golden(read_lines(case_dir_ / "alerts1.txt"),
                              read_lines(case_dir_ / "alerts2.txt"));
}

TEST_F(CrashSimTest, SurvivesGarbageAppendedToTheLogTail) {
  ASSERT_EQ(run_child("alerts1.txt", "wal.commit.acked:25"), 42);
  {
    std::ofstream f(last_segment(), std::ios::binary | std::ios::app);
    for (int i = 0; i < 64; ++i) f.put(static_cast<char>(0xA5 ^ (i * 37)));
  }
  ASSERT_EQ(run_child("alerts2.txt"), 0);
  expect_merged_equals_golden(read_lines(case_dir_ / "alerts1.txt"),
                              read_lines(case_dir_ / "alerts2.txt"));
}

TEST_F(CrashSimTest, SurvivesACorruptedNewestCheckpoint) {
  // checkpoint-every defaults to 64 and the crash lands around record 100,
  // so at least one checkpoint exists — corrupt the newest one.
  ASSERT_EQ(run_child("alerts1.txt", "wal.commit.acked:25"), 42);
  fs::path newest;
  for (const auto& entry : fs::directory_iterator(case_dir_ / "wal"))
    if (entry.path().extension() == ".ckpt" &&
        (newest.empty() || entry.path().filename() > newest.filename()))
      newest = entry.path();
  ASSERT_FALSE(newest.empty()) << "no checkpoint was written before crash";
  {
    std::ofstream f(newest, std::ios::binary | std::ios::trunc);
    f << "this is not a checkpoint";
  }
  ASSERT_EQ(run_child("alerts2.txt"), 0);
  // The restart fell back (older checkpoint or full replay) — and still
  // reconstructed the identical stream.
  expect_merged_equals_golden(read_lines(case_dir_ / "alerts1.txt"),
                              read_lines(case_dir_ / "alerts2.txt"));
}

}  // namespace
}  // namespace desh
