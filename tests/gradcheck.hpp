// Finite-difference gradient checking shared by the nn-layer tests: the
// analytic backward passes of every layer are verified against central
// differences of the forward pass.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/parameter.hpp"
#include "tensor/matrix.hpp"

namespace desh::testutil {

/// Checks d(loss)/d(param) for every element of `target` against central
/// differences of `loss_fn` (which must re-run forward and return the loss
/// WITHOUT touching gradients). `analytic` holds the gradient under test.
inline void expect_matches_numeric_gradient(
    tensor::Matrix& target, const tensor::Matrix& analytic,
    const std::function<double()>& loss_fn, double epsilon = 1e-3,
    double tolerance = 2e-2) {
  ASSERT_EQ(target.rows(), analytic.rows());
  ASSERT_EQ(target.cols(), analytic.cols());
  for (std::size_t i = 0; i < target.size(); ++i) {
    const float saved = target.data()[i];
    target.data()[i] = saved + static_cast<float>(epsilon);
    const double plus = loss_fn();
    target.data()[i] = saved - static_cast<float>(epsilon);
    const double minus = loss_fn();
    target.data()[i] = saved;
    const double numeric = (plus - minus) / (2.0 * epsilon);
    const double got = analytic.data()[i];
    const double scale = std::max({1.0, std::abs(numeric), std::abs(got)});
    EXPECT_NEAR(got, numeric, tolerance * scale)
        << "element " << i << " of " << target.size();
  }
}

}  // namespace desh::testutil
