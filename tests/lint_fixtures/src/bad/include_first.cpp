// Seeded include-first violation: the sibling header is not included first.
#include <vector>

#include "bad/include_first.hpp"

int forty_two() { return 42; }
