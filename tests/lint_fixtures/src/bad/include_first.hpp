#pragma once

int forty_two();
