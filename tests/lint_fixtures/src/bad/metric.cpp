// Seeded metric-catalog violation: a metric string no catalog declares.
#include <string>

std::string undeclared_metric() { return "desh_phantom_total"; }
