// Seeded ordering-comment violation: a relaxed load with no justification.
#include <atomic>

std::atomic<int> g_counter{0};

int peek() { return g_counter.load(std::memory_order_relaxed); }
