// Seeds the NON-WAIVABLE public-throw rule: a header is a public entry
// point, so a `throw` in one bypasses the core::Expected taxonomy. The
// throw-discipline waiver below IS honored (that rule stays waivable); the
// public-throw waiver is IGNORED — the finding the fixture test pins is
// proof that a header cannot opt out.
#pragma once

#include <stdexcept>

inline void public_fixture_throwing() {
  // desh-lint: allow(throw-discipline) desh-lint: allow(public-throw)
  throw std::runtime_error("headers must report failures as core::Expected");
}
