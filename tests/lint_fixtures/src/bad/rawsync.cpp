// Seeded raw-sync violation: a std::mutex outside util/sync.hpp.
#include <mutex>

std::mutex g_bad_mutex;
