// Seeded rng-discipline violation: libc rand outside util/rng.
#include <cstdlib>

int roll() { return std::rand(); }
