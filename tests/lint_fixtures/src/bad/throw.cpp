// Seeded throw-discipline violation: an unwaived throw.
#include <stdexcept>

void explode() { throw std::runtime_error("boom"); }
