// Negative space for the scrubber: rule-triggering text inside comments and
// string literals must NOT fire. std::mutex, throw, std::rand() — all prose.
#include <atomic>
#include <string>

// A proper ordering comment covers a contiguous block of atomics:
std::atomic<int> g_a{0}, g_b{0};

int covered() {
  // ordering: relaxed — fixture statistics, nothing published.
  const int a = g_a.load(std::memory_order_relaxed);
  const int b = g_b.load(std::memory_order_relaxed);
  return a + b;
}

std::string prose() { return "this throw and std::mutex are just words"; }

// seq_cst is the default and needs no comment:
int strict() { return g_a.load(std::memory_order_seq_cst); }
