// Every rule violated once — and waived once. This file must stay silent.
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>

// desh-lint: allow(raw-sync) fixture: waiver on the line above
std::mutex g_waived_mutex;

void waived_throw() {
  // desh-lint: allow(throw-discipline) fixture: waiver on the line above
  throw std::runtime_error("waived");
}

int waived_rand() { return std::rand(); }  // desh-lint: allow(rng-discipline)

std::string waived_metric() {
  // desh-lint: allow(metric-catalog) fixture: waiver on the line above
  return "desh_waived_total";
}

std::atomic<int> g_level{0};

int waived_ordering() {
  // desh-lint: allow(ordering-comment) fixture: no ordering: text here
  return g_level.load(std::memory_order_relaxed);
}
