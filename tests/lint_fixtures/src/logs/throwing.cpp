// Seeds the public-throw rule's src/logs extension: the subsystem behind
// desh::ingest's streaming pump is throw-free in .cpp files too, not just
// headers. Both waivers below are spelled out: the throw-discipline one IS
// honored (that rule stays waivable), the public-throw one is ignored —
// the finding the fixture test pins is proof that src/logs cannot opt out
// of the Expected error taxonomy.
#include <stdexcept>

void logs_fixture_throwing() {
  // desh-lint: allow(throw-discipline) desh-lint: allow(public-throw)
  throw std::runtime_error("src/logs must return core::Expected instead");
}
