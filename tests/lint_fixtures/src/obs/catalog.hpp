// Fixture catalog: two declared metric families.
#pragma once

inline constexpr const char* kFixtureTotal = "desh_fixture_total";
inline constexpr const char* kFixtureSeconds = "desh_fixture_seconds";
