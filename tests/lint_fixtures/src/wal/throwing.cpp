// Seeds the one NON-WAIVABLE rule. Both waivers below are spelled out:
// the throw-discipline one IS honored (that rule stays waivable), the
// wal-expected one is ignored — the finding the fixture test pins is proof
// that src/wal cannot opt out of the Expected error taxonomy.
#include <stdexcept>

void wal_fixture_throwing() {
  // desh-lint: allow(throw-discipline) desh-lint: allow(wal-expected)
  throw std::runtime_error("src/wal must return core::Expected instead");
}
