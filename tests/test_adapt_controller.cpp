// AdaptController closed-loop tests: drift detection on a shifted stream,
// inline (deterministic) retraining, challenger rejection, validated
// promotion through the registry + server swap, probation rollback, and
// bit-identical replay. The fixture trains one tiny-profile champion and
// builds one drifted stream: the test corpus with a novel fault family
// (absent from the champion's vocabulary) injected after every other
// record.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "desh.hpp"
#include "logs/generator.hpp"
#include "logs/template_miner.hpp"
#include "logs/vocab.hpp"

namespace desh::adapt {
namespace {

namespace fs = std::filesystem;

using core::DeshPipeline;
using core::ErrorCode;
using core::Expected;
using core::MonitorAlert;

class AdaptTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    logs::SyntheticCraySource source(logs::profile_tiny(2024));
    logs::SyntheticLog log = source.generate();
    auto [train, test] =
        core::split_corpus(log.records, log.truth.split_time);
    core::DeshConfig config;
    config.phase1.epochs = 1;
    auto fitted = std::make_shared<DeshPipeline>(config);
    fitted->fit(train);
    champion_ = new std::shared_ptr<const DeshPipeline>(std::move(fitted));

    // The drifted stream: after every other test record, a clone carrying a
    // novel fault message ("fault" labels it anomalous; the digits collapse
    // to one template the champion has never seen).
    stream_ = new logs::LogCorpus();
    std::size_t i = 0;
    for (const logs::LogRecord& record : test) {
      stream_->push_back(record);
      if (++i % 2 == 0) {
        logs::LogRecord novel = record;
        novel.message =
            "widget driver fault on port " + std::to_string(i % 7);
        novel.timestamp += 1e-3;
        stream_->push_back(std::move(novel));
      }
    }
  }
  static void TearDownTestSuite() {
    delete stream_;
    delete champion_;
  }

  void SetUp() override {
    root_ = ::testing::TempDir() + "/desh_adapt_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Deterministic single-swap options: inline retrain, single-threaded
  /// challenger, fixed seed, and a cooldown long enough that at most one
  /// retrain fires per test.
  AdaptOptions options() const {
    AdaptOptions o;
    o.registry_root = root_;
    o.trainer.phase1.epochs = 1;
    o.trainer.threads = 1;
    o.config.background = false;
    o.config.oov_window = 64;
    o.config.novelty_window = 64;
    o.config.min_window_fill = 16;
    o.config.hysteresis = 2;
    o.config.oov_trigger = 0.2;
    o.config.oov_clear = 0.05;
    o.config.replay_capacity = 1u << 16;
    // Deep enough for complete failure chains (the tiny-profile stream has
    // none in its first ~200 records), early enough that the swap happens
    // mid-stream.
    o.config.min_replay_records = 512;
    o.config.retrain_cooldown_records = 1u << 20;
    o.config.probation_records = 64;
    o.config.regression_margin = 0.10;
    return o;
  }

  /// options() with drift detection effectively off: every window is
  /// deeper than the whole stream, so no signal ever reaches min_fill and
  /// only force_retrain() can launch. For tests that drive the swap
  /// explicitly.
  AdaptOptions quiet_options() const {
    AdaptOptions o = options();
    o.config.oov_window = 1u << 16;
    o.config.novelty_window = 1u << 16;
    o.config.calibration_window = 1u << 16;
    o.config.min_window_fill = 1u << 16;
    return o;
  }

  /// Replays `corpus` through on_batch in `batch` sized chunks (no alerts).
  static void feed(AdaptController& controller,
                   const logs::LogCorpus& corpus, std::size_t batch) {
    for (std::size_t at = 0; at < corpus.size(); at += batch) {
      const std::size_t n = std::min(batch, corpus.size() - at);
      controller.on_batch(std::span(corpus.data() + at, n), {});
    }
  }

  /// A burst of one repeated message the CURRENT champion cannot know
  /// ("stall" labels it anomalous), timestamped after the stream's end.
  static logs::LogCorpus regression_burst(std::size_t count) {
    logs::LogCorpus burst;
    logs::LogRecord base = stream_->back();
    for (std::size_t i = 0; i < count; ++i) {
      logs::LogRecord r = base;
      r.message = "gizmo cache stall detected lane " + std::to_string(i % 5);
      r.timestamp += 1.0 + static_cast<double>(i);
      burst.push_back(std::move(r));
    }
    return burst;
  }

  static std::shared_ptr<const DeshPipeline>* champion_;
  static logs::LogCorpus* stream_;
  std::string root_;
};

std::shared_ptr<const DeshPipeline>* AdaptTest::champion_ = nullptr;
logs::LogCorpus* AdaptTest::stream_ = nullptr;

// --- construction ----------------------------------------------------------

TEST_F(AdaptTest, CreateRejectsBadArguments) {
  AdaptOptions opts = options();
  const auto null_champion = AdaptController::create(nullptr, opts);
  ASSERT_FALSE(null_champion.ok());
  EXPECT_EQ(null_champion.error().code, ErrorCode::kInvalidArgument);

  const auto unfitted = AdaptController::create(
      std::make_shared<const DeshPipeline>(), opts);
  ASSERT_FALSE(unfitted.ok());
  EXPECT_EQ(unfitted.error().code, ErrorCode::kInvalidArgument);

  AdaptOptions no_root = options();
  no_root.registry_root.clear();
  const auto rootless = AdaptController::create(*champion_, no_root);
  ASSERT_FALSE(rootless.ok());
  EXPECT_EQ(rootless.error().code, ErrorCode::kInvalidArgument);
}

TEST_F(AdaptTest, CreateListsEveryAdaptConfigViolationWithFieldPaths) {
  AdaptOptions bad = options();
  bad.config.oov_window = 0;
  bad.config.oov_clear = 0.9;  // above oov_trigger: dead band inverted
  bad.config.holdout_fraction = 1.5;
  const auto controller = AdaptController::create(*champion_, bad);
  ASSERT_FALSE(controller.ok());
  EXPECT_EQ(controller.error().code, ErrorCode::kInvalidConfig);
  EXPECT_NE(controller.error().message.find("adapt.oov_window"),
            std::string::npos);
  EXPECT_NE(controller.error().message.find("adapt.oov_clear"),
            std::string::npos);
  EXPECT_NE(controller.error().message.find("adapt.holdout_fraction"),
            std::string::npos);
}

TEST_F(AdaptTest, CreatePublishesTheIncumbentAsVersionOne) {
  auto controller = AdaptController::create(*champion_, options());
  ASSERT_TRUE(controller.ok()) << controller.error().message;
  const ModelRegistry& registry = controller.value()->registry();
  ASSERT_TRUE(registry.champion().has_value());
  EXPECT_EQ(*registry.champion(), 1u);
  ASSERT_EQ(registry.entries().size(), 1u);
  EXPECT_EQ(registry.entries()[0].note, "initial champion");
  const AdaptStats stats = controller.value()->stats();
  ASSERT_TRUE(stats.champion_version.has_value());
  EXPECT_EQ(*stats.champion_version, 1u);
  EXPECT_EQ(controller.value()->champion().get(), champion_->get());
}

// --- the closed loop, detached (no server) ---------------------------------

TEST_F(AdaptTest, DriftTriggerRetrainsAndPromotesACoveringChallenger) {
  auto controller =
      std::move(AdaptController::create(*champion_, options())).value();
  feed(*controller, *stream_, 64);
  controller->wait_idle();

  const AdaptStats stats = controller->stats();
  EXPECT_EQ(stats.records_tapped, stream_->size());
  EXPECT_GE(stats.drift_triggers, 1u);
  EXPECT_EQ(stats.retrains, 1u);  // the cooldown absorbs later triggers
  EXPECT_EQ(stats.shadow_evals, 1u);
  EXPECT_EQ(stats.retrain_failures, 0u);
  ASSERT_EQ(stats.promotions, 1u)
      << "challenger must win: champion accuracy "
      << stats.last_shadow.champion_accuracy << " coverage "
      << stats.last_shadow.champion_coverage << " vs challenger accuracy "
      << stats.last_shadow.challenger_accuracy << " coverage "
      << stats.last_shadow.challenger_coverage;
  EXPECT_EQ(stats.rejections, 0u);
  EXPECT_EQ(stats.rollbacks, 0u);
  EXPECT_TRUE(stats.last_shadow.challenger_wins);
  EXPECT_GT(stats.last_shadow.challenger_coverage,
            stats.last_shadow.champion_coverage);

  // Registry: v2 published with drift provenance and crowned; v1 retained
  // as the rollback target.
  const ModelRegistry& registry = controller->registry();
  ASSERT_EQ(registry.entries().size(), 2u);
  EXPECT_EQ(*registry.champion(), 2u);
  ASSERT_TRUE(registry.previous_champion().has_value());
  EXPECT_EQ(*registry.previous_champion(), 1u);
  EXPECT_EQ(registry.entries()[1].note.rfind("drift:", 0), 0u)
      << registry.entries()[1].note;

  // The new champion actually speaks the shifted traffic.
  const std::shared_ptr<const DeshPipeline> promoted =
      controller->champion();
  EXPECT_NE(promoted.get(), champion_->get());
  const std::string novel_template =
      logs::TemplateMiner::extract("widget driver fault on port 3");
  EXPECT_EQ((*champion_)->vocab().encode(novel_template),
            logs::PhraseVocab::kUnknownId);
  EXPECT_NE(promoted->vocab().encode(novel_template),
            logs::PhraseVocab::kUnknownId);
}

TEST_F(AdaptTest, ChallengerThatCannotWinIsRejected) {
  AdaptOptions opts = quiet_options();   // we force the retrain
  opts.config.min_score_gain = 1e6;      // nothing can clear this bar
  auto controller =
      std::move(AdaptController::create(*champion_, opts)).value();
  EXPECT_FALSE(controller->force_retrain()) << "empty replay must refuse";
  feed(*controller, *stream_, 64);
  ASSERT_TRUE(controller->force_retrain());
  controller->wait_idle();

  const AdaptStats stats = controller->stats();
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.shadow_evals, 1u);
  EXPECT_EQ(stats.rejections, 1u);
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_FALSE(stats.last_shadow.challenger_wins);
  // The loser leaves no trace: registry unchanged, champion untouched.
  EXPECT_EQ(controller->registry().entries().size(), 1u);
  EXPECT_EQ(*controller->registry().champion(), 1u);
  EXPECT_EQ(controller->champion().get(), champion_->get());
}

// --- the closed loop, attached to a live server ----------------------------

TEST_F(AdaptTest, RegressionDuringProbationRollsBackChampionAndServer) {
  // The swap is forced at stream end, so probation sees only the burst.
  AdaptOptions opts = quiet_options();
  serve::ServeConfig serve_config;
  serve_config.queue_capacity = stream_->size();
  serve_config.max_batch = 128;
  serve_config.start_collector = false;
  auto server =
      std::move(serve::InferenceServer::create(*champion_, serve_config)
                    .value());
  auto controller =
      std::move(AdaptController::create(*champion_, opts)).value();
  controller->attach(*server);

  // Phase 1: stream everything, then retrain; the challenger covers the
  // shifted traffic, wins the shadow eval and the server installs it at
  // the next batch boundary.
  for (std::size_t at = 0; at < stream_->size(); at += 128) {
    const std::size_t n = std::min<std::size_t>(128, stream_->size() - at);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(server->submit((*stream_)[at + i]),
                serve::Admission::kAccepted);
    server->pump();
  }
  ASSERT_TRUE(controller->force_retrain());
  controller->wait_idle();
  server->drain();  // installs the staged challenger
  ASSERT_EQ(controller->stats().promotions, 1u);
  ASSERT_EQ(*controller->registry().champion(), 2u);
  ASSERT_EQ(server->stats().reloads, 1u);
  ASSERT_TRUE(controller->stats().probation_active);

  // Phase 2: during probation the traffic shifts AGAIN, to a family even
  // the fresh challenger has never seen. Its holdout promise is broken, so
  // the controller rolls the registry and the server back to version 1.
  const logs::LogCorpus burst = regression_burst(96);
  for (const logs::LogRecord& r : burst)
    ASSERT_EQ(server->submit(r), serve::Admission::kAccepted);
  server->pump();   // tap sees the burst; rollback stages the old champion
  server->drain();  // boundary: the rollback snapshot installs

  const AdaptStats stats = controller->stats();
  EXPECT_EQ(stats.rollbacks, 1u);
  EXPECT_FALSE(stats.probation_active);
  ASSERT_TRUE(stats.champion_version.has_value());
  EXPECT_EQ(*stats.champion_version, 1u);
  EXPECT_EQ(*controller->registry().champion(), 1u);
  EXPECT_FALSE(controller->registry().previous_champion().has_value());
  EXPECT_EQ(controller->champion().get(), champion_->get());
  EXPECT_EQ(server->stats().reloads, 2u);

  controller->stop();
  server->stop();
}

// --- determinism -----------------------------------------------------------

std::vector<std::pair<std::string, std::string>> snapshot_bytes(
    const std::string& dir) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream is(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    files.emplace_back(fs::relative(entry.path(), dir).string(),
                       std::move(bytes));
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST_F(AdaptTest, FixedSeedSingleThreadedRetrainIsBitIdentical) {
  // Two full detect->retrain->promote runs from the same champion and the
  // same stream, in separate registries: the persisted challenger
  // snapshots must match byte for byte (fixed seed, threads=1, inline
  // retrain).
  std::vector<std::string> roots = {root_ + "_a", root_ + "_b"};
  for (const std::string& root : roots) {
    fs::remove_all(root);
    AdaptOptions opts = options();
    opts.registry_root = root;
    auto controller =
        std::move(AdaptController::create(*champion_, opts)).value();
    feed(*controller, *stream_, 64);
    ASSERT_EQ(controller->stats().promotions, 1u);
    ASSERT_EQ(*controller->registry().champion(), 2u);
  }
  const auto a = snapshot_bytes(roots[0] + "/v2");
  const auto b = snapshot_bytes(roots[1] + "/v2");
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second, b[i].second)
        << "snapshot file " << a[i].first << " differs between runs";
  }
  for (const std::string& root : roots) fs::remove_all(root);
}

void expect_same_alerts(const std::vector<MonitorAlert>& expected,
                        const std::vector<MonitorAlert>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].node, actual[i].node);
    EXPECT_EQ(expected[i].time, actual[i].time);
    EXPECT_EQ(expected[i].score, actual[i].score);
    EXPECT_EQ(expected[i].predicted_lead_seconds,
              actual[i].predicted_lead_seconds);
    EXPECT_EQ(expected[i].message, actual[i].message);
  }
}

TEST_F(AdaptTest, ServeMatchesSequentialObserveAcrossALiveSwap) {
  const std::size_t kBatch = 64;
  serve::ServeConfig serve_config;
  serve_config.queue_capacity = stream_->size();
  serve_config.max_batch = kBatch;
  serve_config.start_collector = false;
  auto server =
      std::move(serve::InferenceServer::create(*champion_, serve_config)
                    .value());
  auto controller =
      std::move(AdaptController::create(*champion_, options())).value();
  controller->attach(*server);

  // Chunked submit+pump; record which chunk the promoted model installed
  // at (reloads increments at the START of that chunk's pump, so that
  // chunk and everything after it ran under the new model, with fresh
  // window state).
  std::size_t swap_chunk = 0, chunks = 0;
  for (std::size_t at = 0; at < stream_->size(); at += kBatch) {
    const std::size_t n = std::min(kBatch, stream_->size() - at);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(server->submit((*stream_)[at + i]),
                serve::Admission::kAccepted);
    const std::size_t reloads_before = server->stats().reloads;
    server->pump();
    ++chunks;
    if (server->stats().reloads > reloads_before) swap_chunk = chunks;
  }
  ASSERT_GT(swap_chunk, 0u) << "the stream must cause exactly one swap";
  ASSERT_EQ(server->stats().reloads, 1u);
  const std::vector<MonitorAlert> served = server->poll_alerts();

  // Reference: sequential observe under the champion up to the swap
  // boundary, then under the promoted pipeline with fresh windows.
  const std::shared_ptr<const DeshPipeline> promoted =
      controller->champion();
  std::vector<MonitorAlert> expected;
  core::StreamingMonitor before(**champion_, serve_config.monitor);
  core::StreamingMonitor after(*promoted, serve_config.monitor);
  std::size_t chunk = 0;
  for (std::size_t at = 0; at < stream_->size(); at += kBatch) {
    const std::size_t n = std::min(kBatch, stream_->size() - at);
    ++chunk;
    core::StreamingMonitor& monitor = chunk < swap_chunk ? before : after;
    for (std::size_t i = 0; i < n; ++i)
      if (auto alert = monitor.observe((*stream_)[at + i]))
        expected.push_back(std::move(*alert));
  }
  ASSERT_FALSE(expected.empty()) << "fixture stream never alerted";
  expect_same_alerts(expected, served);

  controller->stop();
  server->stop();
}

// --- background mode (TSan surface) ----------------------------------------

TEST_F(AdaptTest, BackgroundRetrainNeverBlocksTheTapThread) {
  AdaptOptions opts = quiet_options();  // force_retrain drives this test
  opts.config.background = true;
  serve::ServeConfig serve_config;
  serve_config.queue_capacity = 4096;
  auto server =
      std::move(serve::InferenceServer::create(*champion_, serve_config)
                    .value());  // collector thread running
  auto controller =
      std::move(AdaptController::create(*champion_, opts)).value();
  controller->attach(*server);

  // Prime the replay, launch a background retrain, and keep the ingest
  // path busy while it runs: tap (collector thread), retrain thread, and
  // this thread's stats()/drift() reads all race under TSan's eye.
  const std::size_t half = std::min<std::size_t>(512, stream_->size() / 2);
  for (std::size_t i = 0; i < half; ++i)
    server->submit((*stream_)[i]);
  server->drain();
  ASSERT_TRUE(controller->force_retrain());
  EXPECT_FALSE(controller->force_retrain()) << "one retrain in flight";
  for (std::size_t i = half; i < 2 * half; ++i) {
    server->submit((*stream_)[i]);
    if (i % 64 == 0) {
      (void)controller->stats();
      (void)controller->drift();
    }
  }
  server->drain();
  controller->wait_idle();
  const AdaptStats stats = controller->stats();
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_FALSE(stats.retrain_in_flight);
  EXPECT_EQ(stats.shadow_evals + stats.retrain_failures, 1u);
  EXPECT_EQ(stats.records_tapped, 2 * half);

  // stop() detaches the tap: later traffic is served but no longer tapped.
  controller->stop();
  server->submit((*stream_)[0]);
  server->drain();
  EXPECT_EQ(controller->stats().records_tapped, 2 * half);
  server->stop();
}

}  // namespace
}  // namespace desh::adapt
