// desh::adapt sensing-layer unit tests: DriftDetector edge cases (empty
// window, constant stream, all-OOV burst, dead-band hysteresis) plus the
// ReplayBuffer / split_replay plumbing the retrainer snapshots from.
// Everything here is pure bookkeeping — no pipeline, no model fits.
#include <gtest/gtest.h>

#include "adapt/drift.hpp"
#include "adapt/replay_buffer.hpp"
#include "logs/record.hpp"

namespace desh::adapt {
namespace {

core::AdaptConfig small_config() {
  core::AdaptConfig config;
  config.oov_window = 16;
  config.novelty_window = 16;
  config.calibration_window = 8;
  config.min_window_fill = 4;
  config.oov_trigger = 0.5;
  config.oov_clear = 0.2;
  config.novelty_trigger = 0.5;
  config.novelty_clear = 0.2;
  config.calibration_trigger = 0.5;
  config.calibration_clear = 0.2;
  config.hysteresis = 2;
  return config;
}

// --- edge case: empty window ----------------------------------------------

TEST(DriftDetector, EmptyWindowNeverTriggers) {
  DriftDetector detector(small_config());
  for (int i = 0; i < 100; ++i) detector.evaluate();
  EXPECT_FALSE(detector.take_trigger());
  EXPECT_FALSE(detector.status().drifting());
  EXPECT_EQ(detector.status().oov_samples, 0u);
  EXPECT_EQ(detector.status().oov_rate, 0.0);
}

TEST(DriftDetector, BelowMinFillNeverTriggersEvenAtFullScale) {
  core::AdaptConfig config = small_config();
  DriftDetector detector(config);
  // min_window_fill - 1 all-OOV samples: maximal statistic, no evidence.
  for (std::size_t i = 0; i + 1 < config.min_window_fill; ++i) {
    detector.observe_record(true);
    detector.evaluate();
  }
  EXPECT_EQ(detector.status().oov_rate, 1.0);
  EXPECT_FALSE(detector.take_trigger());
  EXPECT_FALSE(detector.status().drifting());
}

// --- edge case: constant in-vocabulary stream ------------------------------

TEST(DriftDetector, ConstantHealthyStreamNeverTriggers) {
  DriftDetector detector(small_config());
  for (int i = 0; i < 500; ++i) {
    detector.observe_record(false);
    detector.observe_novelty(false);
    detector.observe_calibration(0.0);
    detector.evaluate();
  }
  EXPECT_FALSE(detector.take_trigger());
  EXPECT_FALSE(detector.status().drifting());
  EXPECT_EQ(detector.status().oov_rate, 0.0);
  EXPECT_EQ(detector.status().novelty_rate, 0.0);
  EXPECT_EQ(detector.status().calibration_error, 0.0);
}

// --- edge case: all-OOV burst ----------------------------------------------

TEST(DriftDetector, AllOovBurstLatchesAfterHysteresis) {
  core::AdaptConfig config = small_config();
  DriftDetector detector(config);
  // Fill to min_window_fill with OOV samples, then count evaluations until
  // the latch: exactly `hysteresis` consecutive breached evaluations.
  for (std::size_t i = 0; i < config.min_window_fill; ++i)
    detector.observe_record(true);
  detector.evaluate();  // breach 1 of 2
  EXPECT_FALSE(detector.status().drifting());
  EXPECT_FALSE(detector.take_trigger());
  detector.evaluate();  // breach 2 of 2 -> latch
  EXPECT_TRUE(detector.status().drifting());
  ASSERT_EQ(detector.status().latched.size(), 1u);
  EXPECT_EQ(detector.status().latched[0], DriftSignal::kOovRate);

  // The rising edge is consumed exactly once; the latch itself stays up.
  EXPECT_TRUE(detector.take_trigger());
  EXPECT_FALSE(detector.take_trigger());
  detector.evaluate();
  EXPECT_TRUE(detector.status().drifting());
  EXPECT_FALSE(detector.take_trigger());
}

// --- dead band -------------------------------------------------------------

TEST(DriftDetector, DeadBandHoldsLatchUntilClearThreshold) {
  core::AdaptConfig config = small_config();  // trigger 0.5, clear 0.2
  DriftDetector detector(config);
  for (std::size_t i = 0; i < config.oov_window; ++i)
    detector.observe_record(true);
  for (std::size_t i = 0; i < config.hysteresis; ++i) detector.evaluate();
  ASSERT_TRUE(detector.status().drifting());
  EXPECT_TRUE(detector.take_trigger());

  // Dilute the window to ~0.3: between clear (0.2) and trigger (0.5).
  // Borderline traffic must not flap the latch.
  for (std::size_t i = 0; i < 11; ++i) detector.observe_record(false);
  detector.evaluate();
  EXPECT_GT(detector.status().oov_rate, config.oov_clear);
  EXPECT_LT(detector.status().oov_rate, config.oov_trigger);
  EXPECT_TRUE(detector.status().drifting()) << "latch dropped in dead band";
  EXPECT_FALSE(detector.take_trigger()) << "no new rising edge in dead band";

  // Dilute below clear: the latch releases, and a fresh burst re-arms it
  // (a second rising edge).
  for (std::size_t i = 0; i < 16; ++i) detector.observe_record(false);
  detector.evaluate();
  EXPECT_LE(detector.status().oov_rate, config.oov_clear);
  EXPECT_FALSE(detector.status().drifting());
  for (std::size_t i = 0; i < 16; ++i) detector.observe_record(true);
  for (std::size_t i = 0; i < config.hysteresis; ++i) detector.evaluate();
  EXPECT_TRUE(detector.take_trigger());
}

TEST(DriftDetector, NonConsecutiveBreachesDoNotLatch) {
  core::AdaptConfig config = small_config();
  DriftDetector detector(config);
  for (int round = 0; round < 10; ++round) {
    // One breached evaluation...
    for (int i = 0; i < 16; ++i) detector.observe_record(true);
    detector.evaluate();
    ASSERT_FALSE(detector.status().drifting());
    // ...interrupted before the second: the consecutive count restarts.
    for (int i = 0; i < 16; ++i) detector.observe_record(false);
    detector.evaluate();
  }
  EXPECT_FALSE(detector.take_trigger());
}

// --- the other signals share the state machine -----------------------------

TEST(DriftDetector, NoveltyAndCalibrationLatchIndependently) {
  core::AdaptConfig config = small_config();
  DriftDetector detector(config);
  for (std::size_t i = 0; i < 8; ++i) {
    detector.observe_novelty(true);
    detector.observe_calibration(0.9);
  }
  for (std::size_t i = 0; i < config.hysteresis; ++i) detector.evaluate();
  ASSERT_EQ(detector.status().latched.size(), 2u);
  EXPECT_EQ(detector.status().latched[0], DriftSignal::kNoveltyRate);
  EXPECT_EQ(detector.status().latched[1], DriftSignal::kCalibrationError);
  EXPECT_EQ(detector.status().oov_samples, 0u);
  EXPECT_TRUE(detector.take_trigger());
}

TEST(DriftDetector, CalibrationSamplesClampToUnitInterval) {
  DriftDetector detector(small_config());
  for (int i = 0; i < 8; ++i) detector.observe_calibration(25.0);
  detector.evaluate();
  EXPECT_EQ(detector.status().calibration_error, 1.0);
  detector.reset();
  for (int i = 0; i < 8; ++i) detector.observe_calibration(-3.0);
  detector.evaluate();
  EXPECT_EQ(detector.status().calibration_error, 0.0);
}

TEST(DriftDetector, ResetForgetsWindowsAndLatches) {
  core::AdaptConfig config = small_config();
  DriftDetector detector(config);
  for (std::size_t i = 0; i < 16; ++i) detector.observe_record(true);
  for (std::size_t i = 0; i < config.hysteresis; ++i) detector.evaluate();
  ASSERT_TRUE(detector.status().drifting());
  detector.reset();
  EXPECT_FALSE(detector.status().drifting());
  EXPECT_EQ(detector.status().oov_samples, 0u);
  EXPECT_EQ(detector.status().oov_rate, 0.0);
  EXPECT_FALSE(detector.take_trigger()) << "reset must clear a pending edge";
  for (int i = 0; i < 100; ++i) detector.evaluate();
  EXPECT_FALSE(detector.take_trigger());
}

TEST(DriftDetector, SlidingWindowForgetsOldSamples) {
  core::AdaptConfig config = small_config();  // oov_window = 16
  DriftDetector detector(config);
  for (std::size_t i = 0; i < 16; ++i) detector.observe_record(true);
  detector.evaluate();
  EXPECT_EQ(detector.status().oov_rate, 1.0);
  // 16 healthy samples push every OOV sample out of the ring.
  for (std::size_t i = 0; i < 16; ++i) detector.observe_record(false);
  detector.evaluate();
  EXPECT_EQ(detector.status().oov_rate, 0.0);
  EXPECT_EQ(detector.status().oov_samples, 16u);
}

TEST(DriftSignalNames, AreStable) {
  EXPECT_STREQ(to_string(DriftSignal::kOovRate), "oov_rate");
  EXPECT_STREQ(to_string(DriftSignal::kNoveltyRate), "novelty_rate");
  EXPECT_STREQ(to_string(DriftSignal::kCalibrationError),
               "calibration_error");
}

// --- replay buffer ---------------------------------------------------------

logs::LogRecord record_at(double t) {
  logs::LogRecord r;
  r.timestamp = t;
  r.message = "msg " + std::to_string(t);
  return r;
}

TEST(ReplayBuffer, BoundedFifoEvictsOldestFirst) {
  ReplayBuffer buffer(3);
  EXPECT_TRUE(buffer.empty());
  for (double t : {1.0, 2.0, 3.0, 4.0, 5.0}) buffer.append(record_at(t));
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.capacity(), 3u);
  const logs::LogCorpus snap = buffer.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].timestamp, 3.0);  // oldest retained, oldest first
  EXPECT_EQ(snap[2].timestamp, 5.0);
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
}

TEST(SplitReplay, HoldsOutTheMostRecentFraction) {
  logs::LogCorpus corpus;
  for (int t = 0; t < 8; ++t) corpus.push_back(record_at(t));
  const ReplaySplit split = split_replay(corpus, 0.25);
  ASSERT_EQ(split.train.size(), 6u);
  ASSERT_EQ(split.holdout.size(), 2u);
  EXPECT_EQ(split.train.front().timestamp, 0.0);
  EXPECT_EQ(split.holdout.front().timestamp, 6.0);  // the recent tail
  EXPECT_EQ(split.holdout.back().timestamp, 7.0);
}

TEST(SplitReplay, GuaranteesBothSidesWhenPossible) {
  logs::LogCorpus empty;
  EXPECT_TRUE(split_replay(empty, 0.25).train.empty());
  EXPECT_TRUE(split_replay(empty, 0.25).holdout.empty());

  logs::LogCorpus one{record_at(1.0)};
  const ReplaySplit single = split_replay(one, 0.25);
  // A lone record cannot land on both sides; training data wins.
  EXPECT_EQ(single.train.size() + single.holdout.size(), 1u);

  logs::LogCorpus two{record_at(1.0), record_at(2.0)};
  const ReplaySplit pair = split_replay(two, 0.01);
  EXPECT_EQ(pair.train.size(), 1u);  // rounding never empties a side
  EXPECT_EQ(pair.holdout.size(), 1u);
  const ReplaySplit top_heavy = split_replay(two, 0.99);
  EXPECT_EQ(top_heavy.train.size(), 1u);
  EXPECT_EQ(top_heavy.holdout.size(), 1u);
}

}  // namespace
}  // namespace desh::adapt
