// ModelRegistry contract tests: publish/promote/load round-trips, manifest
// persistence across reopen, rollback semantics (including the no-ping-pong
// rule), capacity eviction that never touches the rollback chain, and
// format-version rejection. Shares one trained tiny-profile pipeline.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "adapt/registry.hpp"
#include "core/pipeline.hpp"
#include "logs/generator.hpp"

namespace desh::adapt {
namespace {

namespace fs = std::filesystem;

using core::DeshPipeline;
using core::ErrorCode;
using core::Expected;

class RegistryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    logs::SyntheticCraySource source(logs::profile_tiny(2024));
    logs::SyntheticLog log = source.generate();
    auto [train, test] =
        core::split_corpus(log.records, log.truth.split_time);
    core::DeshConfig config;
    config.phase1.epochs = 1;
    pipeline_ = new DeshPipeline(config);
    pipeline_->fit(train);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  void SetUp() override {
    root_ = ::testing::TempDir() + "/desh_registry_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  static DeshPipeline* pipeline_;
  std::string root_;
};

DeshPipeline* RegistryTest::pipeline_ = nullptr;

TEST_F(RegistryTest, OpenRejectsZeroCapacity) {
  const Expected<ModelRegistry> registry = ModelRegistry::open(root_, 0);
  ASSERT_FALSE(registry.ok());
  EXPECT_EQ(registry.error().code, ErrorCode::kInvalidArgument);
}

TEST_F(RegistryTest, FreshRegistryStartsEmpty) {
  Expected<ModelRegistry> registry = ModelRegistry::open(root_, 4);
  ASSERT_TRUE(registry.ok()) << registry.error().message;
  EXPECT_TRUE(registry.value().entries().empty());
  EXPECT_FALSE(registry.value().champion().has_value());
  EXPECT_FALSE(registry.value().previous_champion().has_value());
  EXPECT_EQ(registry.value().capacity(), 4u);
  EXPECT_EQ(registry.value().root(), root_);
}

TEST_F(RegistryTest, PublishPromoteLoadRoundTrip) {
  ModelRegistry registry = std::move(ModelRegistry::open(root_, 4)).value();
  const Expected<std::uint32_t> v1 =
      registry.publish(*pipeline_, "initial champion");
  ASSERT_TRUE(v1.ok()) << v1.error().message;
  EXPECT_EQ(v1.value(), 1u);
  // publish() records provenance but does NOT crown the snapshot.
  ASSERT_EQ(registry.entries().size(), 1u);
  EXPECT_EQ(registry.entries()[0].note, "initial champion");
  EXPECT_FALSE(registry.champion().has_value());

  ASSERT_TRUE(registry.promote(1).ok());
  ASSERT_TRUE(registry.champion().has_value());
  EXPECT_EQ(*registry.champion(), 1u);
  EXPECT_FALSE(registry.previous_champion().has_value());

  const Expected<DeshPipeline> loaded = registry.load(1);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_TRUE(loaded.value().fitted());
  EXPECT_EQ(loaded.value().vocab().size(), pipeline_->vocab().size());
  EXPECT_TRUE(fs::exists(registry.directory_of(1)));
}

TEST_F(RegistryTest, ReopenRestoresManifestState) {
  {
    ModelRegistry registry =
        std::move(ModelRegistry::open(root_, 4)).value();
    ASSERT_TRUE(registry.publish(*pipeline_, "initial champion").ok());
    ASSERT_TRUE(registry.promote(1).ok());
    ASSERT_TRUE(registry.publish(*pipeline_, "drift:oov_rate").ok());
    ASSERT_TRUE(registry.promote(2).ok());
  }
  Expected<ModelRegistry> reopened = ModelRegistry::open(root_, 4);
  ASSERT_TRUE(reopened.ok()) << reopened.error().message;
  ModelRegistry& registry = reopened.value();
  ASSERT_EQ(registry.entries().size(), 2u);
  EXPECT_EQ(registry.entries()[0].version, 1u);
  EXPECT_EQ(registry.entries()[1].version, 2u);
  EXPECT_EQ(registry.entries()[1].note, "drift:oov_rate");
  ASSERT_TRUE(registry.champion().has_value());
  EXPECT_EQ(*registry.champion(), 2u);
  ASSERT_TRUE(registry.previous_champion().has_value());
  EXPECT_EQ(*registry.previous_champion(), 1u);
  // next_version survives the reopen: no version number is ever reissued.
  const Expected<std::uint32_t> v3 = registry.publish(*pipeline_, "later");
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3.value(), 3u);
}

TEST_F(RegistryTest, RollbackRevertsOnceThenRequiresANewPromote) {
  ModelRegistry registry = std::move(ModelRegistry::open(root_, 4)).value();
  ASSERT_TRUE(registry.publish(*pipeline_, "v1").ok());
  ASSERT_TRUE(registry.promote(1).ok());
  ASSERT_TRUE(registry.publish(*pipeline_, "v2").ok());
  ASSERT_TRUE(registry.promote(2).ok());
  ASSERT_EQ(*registry.previous_champion(), 1u);

  const Expected<std::uint32_t> rolled = registry.rollback();
  ASSERT_TRUE(rolled.ok()) << rolled.error().message;
  EXPECT_EQ(rolled.value(), 1u);
  EXPECT_EQ(*registry.champion(), 1u);
  // The regressed version stays for the post-mortem, but the rollback slot
  // is spent: a second rollback cannot ping-pong back to it.
  ASSERT_EQ(registry.entries().size(), 2u);
  EXPECT_EQ(registry.entries()[1].version, 2u);
  EXPECT_FALSE(registry.previous_champion().has_value());
  const Expected<std::uint32_t> again = registry.rollback();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, ErrorCode::kUnavailable);

  // A fresh promote re-arms the chain.
  ASSERT_TRUE(registry.promote(2).ok());
  EXPECT_EQ(*registry.champion(), 2u);
  EXPECT_EQ(*registry.previous_champion(), 1u);
}

TEST_F(RegistryTest, PromoteAndLoadRejectUnknownVersions) {
  ModelRegistry registry = std::move(ModelRegistry::open(root_, 4)).value();
  ASSERT_TRUE(registry.publish(*pipeline_, "v1").ok());
  const Expected<void> promoted = registry.promote(9);
  ASSERT_FALSE(promoted.ok());
  EXPECT_EQ(promoted.error().code, ErrorCode::kInvalidArgument);
  const Expected<DeshPipeline> loaded = registry.load(9);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kInvalidArgument);
}

TEST_F(RegistryTest, EvictionSkipsChampionAndRollbackTarget) {
  ModelRegistry registry = std::move(ModelRegistry::open(root_, 2)).value();
  ASSERT_TRUE(registry.publish(*pipeline_, "v1").ok());
  ASSERT_TRUE(registry.promote(1).ok());
  ASSERT_TRUE(registry.publish(*pipeline_, "v2").ok());

  // At capacity. v1 is champion (protected); v2 is the oldest evictable.
  ASSERT_TRUE(registry.publish(*pipeline_, "v3").ok());
  ASSERT_EQ(registry.entries().size(), 2u);
  EXPECT_EQ(registry.entries()[0].version, 1u);
  EXPECT_EQ(registry.entries()[1].version, 3u);
  EXPECT_TRUE(fs::exists(registry.directory_of(1)));
  EXPECT_FALSE(fs::exists(registry.directory_of(2)))
      << "evicted snapshot directory must be removed";

  // champion=3, previous=1: every retained version is protected, so a
  // further publish refuses instead of widening the registry.
  ASSERT_TRUE(registry.promote(3).ok());
  const Expected<std::uint32_t> overflow =
      registry.publish(*pipeline_, "v4");
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(registry.entries().size(), 2u);
}

TEST_F(RegistryTest, FutureManifestFormatIsRejected) {
  fs::create_directories(root_);
  std::ofstream os(root_ + "/MANIFEST");
  os << "format=desh-registry-" << (kRegistryFormatVersion + 1) << "\n";
  os << "next_version=1\n";
  os.close();
  const Expected<ModelRegistry> registry = ModelRegistry::open(root_, 4);
  ASSERT_FALSE(registry.ok());
  EXPECT_EQ(registry.error().code, ErrorCode::kFormatVersion);
}

TEST_F(RegistryTest, CorruptManifestIsAnIoError) {
  fs::create_directories(root_);
  std::ofstream os(root_ + "/MANIFEST");
  os << "format=desh-registry-" << kRegistryFormatVersion << "\n";
  os << "this line has no key value structure\n";
  os.close();
  const Expected<ModelRegistry> registry = ModelRegistry::open(root_, 4);
  ASSERT_FALSE(registry.ok());
  EXPECT_EQ(registry.error().code, ErrorCode::kIo);
}

}  // namespace
}  // namespace desh::adapt
