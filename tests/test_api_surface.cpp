// The redesigned public surface: core::Expected semantics, exhaustive
// config validation, the non-throwing construction/persistence entry
// points, and the desh.hpp umbrella exports. Compiling this file against
// ONLY the umbrella header (plus gtest) is itself part of the contract.
#include <gtest/gtest.h>

#include <type_traits>
#include <utility>

#include "desh.hpp"
#include "util/error.hpp"

namespace desh {
namespace {

// --- Expected<T> ----------------------------------------------------------

TEST(Expected, HoldsValueOrError) {
  Expected<int> ok = 7;
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.value_or(-1), 7);

  Expected<int> bad = Error{ErrorCode::kIo, "disk on fire"};
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kIo);
  EXPECT_EQ(bad.error().message, "disk on fire");
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Expected, VoidSpecializationAndMoveOut) {
  Expected<void> ok;
  EXPECT_TRUE(ok.ok());
  Expected<void> bad = Error{ErrorCode::kUnavailable, "later"};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kUnavailable);

  Expected<std::string> s = std::string("payload");
  const std::string moved = std::move(s).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Expected, ErrorCodesHaveNames) {
  EXPECT_STREQ(to_string(ErrorCode::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(to_string(ErrorCode::kInvalidConfig), "invalid_config");
  EXPECT_STREQ(to_string(ErrorCode::kIo), "io");
  EXPECT_STREQ(to_string(ErrorCode::kFormatVersion), "format_version");
  EXPECT_STREQ(to_string(ErrorCode::kUnavailable), "unavailable");
}

// --- DeshConfig::validate -------------------------------------------------

TEST(ConfigValidate, DefaultsAreValid) {
  EXPECT_TRUE(DeshConfig{}.validate().empty());
}

TEST(ConfigValidate, ReportsAllViolationsWithFieldPaths) {
  DeshConfig config;
  config.phase1.hidden_size = 0;
  config.phase2.learning_rate = -1.0f;
  config.phase3.mse_threshold = 1.5f;
  config.phase3.min_position = 0;
  config.extractor.min_length = 1;
  const std::vector<std::string> violations = config.validate();
  ASSERT_GE(violations.size(), 5u);  // every bad field, not just the first
  auto has = [&](const std::string& path) {
    for (const std::string& v : violations)
      if (v.find(path) != std::string::npos) return true;
    return false;
  };
  EXPECT_TRUE(has("phase1.hidden_size"));
  EXPECT_TRUE(has("phase2.learning_rate"));
  EXPECT_TRUE(has("phase3.mse_threshold"));
  EXPECT_TRUE(has("phase3.min_position"));
  EXPECT_TRUE(has("extractor.min_length"));
}

TEST(ConfigValidate, CatchesInvertedLeadTimeWindow) {
  DeshConfig config;
  config.phase3.min_position = 5;
  config.phase3.decision_position = 3;
  const std::vector<std::string> violations = config.validate();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("phase3.decision_position"), std::string::npos);
}

TEST(ConfigValidate, CoversAdaptFieldsWithPaths) {
  DeshConfig config;
  config.adapt.oov_window = 0;
  config.adapt.novelty_trigger = 1.5;
  config.adapt.calibration_clear = 0.8;  // above trigger: dead band inverted
  config.adapt.hysteresis = 0;
  config.adapt.holdout_fraction = 0.0;
  config.adapt.regression_margin = -0.1;
  const std::vector<std::string> violations = config.validate();
  ASSERT_GE(violations.size(), 6u);  // every bad field, not just the first
  auto has = [&](const std::string& path) {
    for (const std::string& v : violations)
      if (v.find(path) != std::string::npos) return true;
    return false;
  };
  EXPECT_TRUE(has("adapt.oov_window"));
  EXPECT_TRUE(has("adapt.novelty_trigger"));
  EXPECT_TRUE(has("adapt.calibration_clear"));
  EXPECT_TRUE(has("adapt.hysteresis"));
  EXPECT_TRUE(has("adapt.holdout_fraction"));
  EXPECT_TRUE(has("adapt.regression_margin"));
}

TEST(ConfigValidate, AdaptDefaultsFormAValidDeadBand) {
  const DeshConfig config;
  EXPECT_LE(config.adapt.oov_clear, config.adapt.oov_trigger);
  EXPECT_LE(config.adapt.novelty_clear, config.adapt.novelty_trigger);
  EXPECT_LE(config.adapt.calibration_clear,
            config.adapt.calibration_trigger);
  EXPECT_TRUE(config.validate().empty());
}

// MonitorConfig::validate is the shared path both StreamingMonitor and
// serve's up-front checks report through — every violation, with a
// caller-chosen prefix.
TEST(ConfigValidate, MonitorConfigReportsAllViolationsWithPrefix) {
  MonitorConfig config;
  config.gap_seconds = 0.0;
  config.rearm_seconds = -5.0;
  const std::vector<std::string> defaults = config.validate();
  ASSERT_EQ(defaults.size(), 2u);
  EXPECT_NE(defaults[0].find("monitor.gap_seconds"), std::string::npos);
  EXPECT_NE(defaults[1].find("monitor.rearm_seconds"), std::string::npos);
  const std::vector<std::string> prefixed = config.validate("serve.monitor");
  ASSERT_EQ(prefixed.size(), 2u);
  EXPECT_NE(prefixed[0].find("serve.monitor.gap_seconds"),
            std::string::npos);
}

// --- construction entry points --------------------------------------------

TEST(PipelineCreate, ReturnsInvalidConfigWithEveryViolation) {
  DeshConfig config;
  config.phase2.hidden_size = 0;
  config.phase3.mse_threshold = -2.0f;
  const Expected<DeshPipeline> pipeline = DeshPipeline::create(config);
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.error().code, ErrorCode::kInvalidConfig);
  EXPECT_NE(pipeline.error().message.find("phase2.hidden_size"),
            std::string::npos);
  EXPECT_NE(pipeline.error().message.find("phase3.mse_threshold"),
            std::string::npos);
}

TEST(PipelineCreate, AcceptsValidConfig) {
  EXPECT_TRUE(DeshPipeline::create(DeshConfig{}).ok());
}

TEST(PipelineCreate, LegacyConstructorThrowsOnInvalidConfig) {
  DeshConfig config;
  config.phase1.epochs = 0;
  EXPECT_THROW(DeshPipeline{config}, util::InvalidArgument);
}

// --- umbrella exports -----------------------------------------------------

// Instantiating every exported type through its desh:: alias proves the
// umbrella header exports the supported surface by itself.
TEST(UmbrellaHeader, ExportsTheSupportedSurface) {
  [[maybe_unused]] DeshConfig config;
  [[maybe_unused]] FitReport fit;
  [[maybe_unused]] TestRun run;
  [[maybe_unused]] FailurePrediction prediction;
  [[maybe_unused]] MonitorConfig monitor_config;
  [[maybe_unused]] MonitorAlert alert;
  [[maybe_unused]] LogRecord record;
  [[maybe_unused]] LogCorpus corpus;
  [[maybe_unused]] NodeId node;
  [[maybe_unused]] DeshObsConfig obs_config;
  [[maybe_unused]] serve::ServeConfig serve_config;
  [[maybe_unused]] serve::ServeStats serve_stats;
  [[maybe_unused]] serve::Admission admission = serve::Admission::kAccepted;
  [[maybe_unused]] serve::ShedPolicy policy = serve::ShedPolicy::kOldestFirst;
  [[maybe_unused]] adapt::AdaptOptions adapt_options;
  [[maybe_unused]] adapt::AdaptStats adapt_stats;
  [[maybe_unused]] adapt::DriftStatus drift_status;
  [[maybe_unused]] adapt::ShadowReport shadow_report;
  [[maybe_unused]] adapt::RegistryEntry registry_entry;
  static_assert(std::is_same_v<decltype(DeshConfig{}.adapt),
                               core::AdaptConfig>);
  static_assert(kPipelineFormatVersion >= kOldestReadablePipelineFormat);
  // The fallible persistence surface is the Expected-returning one.
  static_assert(std::is_same_v<decltype(try_load_pipeline("")),
                               Expected<DeshPipeline>>);
  static_assert(std::is_same_v<decltype(try_save_pipeline(
                                   std::declval<const DeshPipeline&>(), "")),
                               Expected<void>>);
  SUCCEED();
}

}  // namespace
}  // namespace desh
