#include <gtest/gtest.h>

#include "baseline/deeplog.hpp"
#include "baseline/ngram.hpp"
#include "util/error.hpp"

namespace desh::baseline {
namespace {

chains::ParsedLog repeated_pattern_log(std::size_t repeats) {
  // Normal traffic: the strict cycle 1 2 3 4 5, over and over.
  chains::ParsedLog log;
  std::vector<chains::ParsedEvent> events;
  for (std::size_t r = 0; r < repeats; ++r)
    for (std::uint32_t p = 1; p <= 5; ++p)
      events.push_back({static_cast<double>(events.size()), p});
  log.by_node[logs::NodeId{0, 0, 0, 0, 0}] = events;
  log.event_count = events.size();
  return log;
}

chains::CandidateSequence sequence_of(std::vector<std::uint32_t> phrases) {
  chains::CandidateSequence c;
  c.node = logs::NodeId{0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < phrases.size(); ++i)
    c.events.push_back({static_cast<double>(i), phrases[i]});
  return c;
}

TEST(NgramDetector, ProbabilitiesReflectCounts) {
  NgramConfig config;
  config.order = 2;
  NgramDetector detector(config, 8);
  detector.fit(repeated_pattern_log(20));
  const std::uint32_t ctx12[] = {1, 2};
  EXPECT_GT(detector.probability(ctx12, 3), 0.9);
  EXPECT_LT(detector.probability(ctx12, 5), 0.1);
}

TEST(NgramDetector, BackoffHandlesUnseenContexts) {
  NgramConfig config;
  config.order = 3;
  NgramDetector detector(config, 8);
  detector.fit(repeated_pattern_log(10));
  // Context never seen at order 3; backoff still yields a positive prob.
  const std::uint32_t weird[] = {7, 7, 2};
  EXPECT_GT(detector.probability(weird, 3), 0.0);
  // Fully out-of-distribution next key gets the uniform floor at most.
  EXPECT_LE(detector.probability(weird, 7), 0.4 * 0.4 * 0.4);
}

TEST(NgramDetector, TopgRanksByFrequency) {
  NgramConfig config;
  config.order = 1;
  config.g = 2;
  NgramDetector detector(config, 8);
  chains::ParsedLog log;
  // After 1: mostly 2, sometimes 3, once 4.
  std::vector<chains::ParsedEvent> events;
  auto push = [&](std::uint32_t p) {
    events.push_back({static_cast<double>(events.size()), p});
  };
  for (int i = 0; i < 10; ++i) { push(1); push(2); }
  for (int i = 0; i < 3; ++i) { push(1); push(3); }
  push(1); push(4);
  log.by_node[logs::NodeId{0, 0, 0, 0, 0}] = events;
  detector.fit(log);
  const std::uint32_t ctx[] = {1};
  const auto top = detector.topg(ctx);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 2u);
  EXPECT_EQ(top[1], 3u);
  EXPECT_TRUE(detector.entry_is_normal(ctx, 2));
  EXPECT_FALSE(detector.entry_is_normal(ctx, 4));
}

TEST(NgramDetector, FlagsAnomalousSequenceNotNormalOne) {
  NgramConfig config;
  config.order = 2;
  config.g = 2;
  NgramDetector detector(config, 8);
  detector.fit(repeated_pattern_log(20));
  EXPECT_FALSE(detector.flags_candidate(sequence_of({1, 2, 3, 4, 5, 1, 2})));
  EXPECT_TRUE(detector.flags_candidate(sequence_of({1, 5, 2, 4, 3, 1})));
  EXPECT_GT(detector.anomaly_fraction(sequence_of({1, 5, 2, 4, 3, 1})), 0.4);
  EXPECT_EQ(detector.anomaly_fraction(sequence_of({1, 2, 3, 4, 5})), 0.0);
}

TEST(NgramDetector, Validation) {
  NgramConfig bad;
  bad.order = 0;
  EXPECT_THROW(NgramDetector(bad, 8), util::InvalidArgument);
  EXPECT_THROW(NgramDetector(NgramConfig{}, 1), util::InvalidArgument);
}

TEST(DeepLogDetector, LearnsNormalPatternAndFlagsDeviation) {
  DeepLogConfig config;
  config.embed_dim = 8;
  config.hidden_size = 16;
  config.history = 4;
  config.g = 2;
  config.epochs = 25;
  config.window_stride = 1;
  util::Rng rng(1);
  DeepLogDetector detector(config, 8, rng);
  detector.fit(repeated_pattern_log(80));

  // Normal continuation is within top-g; an off-pattern key is not.
  const std::uint32_t window[] = {1, 2, 3, 4};
  EXPECT_TRUE(detector.entry_is_normal(window, 5));
  EXPECT_FALSE(detector.entry_is_normal(window, 2));

  EXPECT_FALSE(detector.flags_candidate(sequence_of({1, 2, 3, 4, 5, 1, 2, 3})));
  EXPECT_TRUE(detector.flags_candidate(sequence_of({1, 4, 2, 5, 3, 1})));
}

TEST(DeepLogDetector, AnomalyFractionBounds) {
  DeepLogConfig config;
  config.embed_dim = 8;
  config.hidden_size = 16;
  config.epochs = 2;
  util::Rng rng(2);
  DeepLogDetector detector(config, 8, rng);
  detector.fit(repeated_pattern_log(20));
  const auto frac = detector.anomaly_fraction(sequence_of({1, 2, 3, 4, 5}));
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
  // Candidates shorter than the window are never flagged.
  EXPECT_FALSE(detector.flags_candidate(sequence_of({1})));
  EXPECT_EQ(detector.anomaly_fraction(sequence_of({1, 2, 3})), 0.0);
}

}  // namespace
}  // namespace desh::baseline
