// Structural invariants of the phrase catalog — the contract the generator,
// labeler and analyzers all rely on.
#include "logs/phrase_catalog.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace desh::logs {
namespace {

const PhraseCatalog& cat() { return PhraseCatalog::instance(); }

TEST(PhraseCatalog, TemplatesAreUniqueAndNonEmpty) {
  std::set<std::string_view> seen;
  for (const CatalogPhrase& p : cat().phrases()) {
    EXPECT_FALSE(p.tmpl.empty());
    EXPECT_TRUE(seen.insert(p.tmpl).second) << "duplicate: " << p.tmpl;
  }
}

TEST(PhraseCatalog, LabelIndexListsArePartition) {
  const std::size_t total = cat().safe_indices().size() +
                            cat().unknown_indices().size() +
                            cat().error_indices().size();
  EXPECT_EQ(total, cat().size());
  for (std::size_t i : cat().safe_indices())
    EXPECT_EQ(cat().phrase(i).label, PhraseLabel::kSafe);
  for (std::size_t i : cat().unknown_indices())
    EXPECT_EQ(cat().phrase(i).label, PhraseLabel::kUnknown);
  for (std::size_t i : cat().error_indices())
    EXPECT_EQ(cat().phrase(i).label, PhraseLabel::kError);
}

TEST(PhraseCatalog, TerminalsAreErrors) {
  EXPECT_FALSE(cat().terminal_indices().empty());
  for (std::size_t i : cat().terminal_indices()) {
    EXPECT_TRUE(cat().phrase(i).terminal);
    EXPECT_EQ(cat().phrase(i).label, PhraseLabel::kError)
        << cat().phrase(i).tmpl;
  }
}

TEST(PhraseCatalog, Table8HasTwelveCalibratedUnknowns) {
  ASSERT_EQ(cat().table8_phrases().size(), 12u);  // P1..P12
  for (std::size_t i : cat().table8_phrases()) {
    const CatalogPhrase& p = cat().phrase(i);
    EXPECT_EQ(p.label, PhraseLabel::kUnknown) << p.tmpl;
    ASSERT_TRUE(p.failure_contribution.has_value()) << p.tmpl;
    EXPECT_GT(*p.failure_contribution, 0.0);
    EXPECT_LT(*p.failure_contribution, 1.0);
  }
  // Spot-check the paper's extremes: P11 (DVS Verify) 60%, P8 (trap) 8%.
  EXPECT_DOUBLE_EQ(
      *cat().phrase(cat().index_of("DVS: Verify Filesystem *")).failure_contribution,
      0.60);
  EXPECT_DOUBLE_EQ(
      *cat().phrase(cat().index_of("Trap invalid code * Error *")).failure_contribution,
      0.08);
}

TEST(PhraseCatalog, EveryClassHasFailureAndLookalikePatterns) {
  for (std::size_t c = 0; c < kFailureClassCount; ++c) {
    const auto cls = static_cast<FailureClass>(c);
    EXPECT_GE(cat().failure_patterns(cls).size(), 3u)
        << failure_class_name(cls);
    EXPECT_GE(cat().lookalike_patterns(cls).size(), 2u)
        << failure_class_name(cls);
  }
}

TEST(PhraseCatalog, FailurePatternsEndWithTerminal) {
  for (std::size_t c = 0; c < kFailureClassCount; ++c) {
    for (const ChainPattern& pattern :
         cat().failure_patterns(static_cast<FailureClass>(c))) {
      ASSERT_GE(pattern.phrases.size(), 6u);  // scoreable at history 5
      EXPECT_TRUE(cat().phrase(pattern.phrases.back()).terminal);
      // No Safe phrase participates in a failure chain.
      for (std::size_t idx : pattern.phrases)
        EXPECT_NE(cat().phrase(idx).label, PhraseLabel::kSafe);
    }
  }
}

TEST(PhraseCatalog, LookalikePatternsDoNotEndWithTerminal) {
  for (std::size_t c = 0; c < kFailureClassCount; ++c) {
    for (const ChainPattern& pattern :
         cat().lookalike_patterns(static_cast<FailureClass>(c))) {
      EXPECT_FALSE(cat().phrase(pattern.phrases.back()).terminal);
      // The Error/Unknown run before recovery must be scoreable (>= 6).
      std::size_t run = 0;
      for (std::size_t idx : pattern.phrases) {
        if (cat().phrase(idx).label == PhraseLabel::kSafe) break;
        ++run;
      }
      EXPECT_GE(run, 6u);
    }
  }
}

TEST(PhraseCatalog, HardLookalikeSharesFailurePrefix) {
  // Variant 0 of each class's lookalikes replicates failure variant 0 up to
  // (at least) the paper's decision point — the mechanism behind the FP rate.
  for (std::size_t c = 0; c < kFailureClassCount; ++c) {
    const auto cls = static_cast<FailureClass>(c);
    const auto& fail = cat().failure_patterns(cls)[0].phrases;
    const auto& hard = cat().lookalike_patterns(cls)[0].phrases;
    const std::size_t shared = std::min(fail.size() - 1, hard.size() - 1);
    ASSERT_GE(shared, 5u) << failure_class_name(cls);
    for (std::size_t i = 0; i < shared; ++i)
      EXPECT_EQ(fail[i], hard[i])
          << failure_class_name(cls) << " position " << i;
  }
}

TEST(PhraseCatalog, PaperLeadTimesMatchTable7) {
  EXPECT_DOUBLE_EQ(paper_lead_time_seconds(FailureClass::kJob), 81.52);
  EXPECT_DOUBLE_EQ(paper_lead_time_seconds(FailureClass::kMce), 160.29);
  EXPECT_DOUBLE_EQ(paper_lead_time_seconds(FailureClass::kFileSystem), 119.32);
  EXPECT_DOUBLE_EQ(paper_lead_time_seconds(FailureClass::kTraps), 115.74);
  EXPECT_DOUBLE_EQ(paper_lead_time_seconds(FailureClass::kHardware), 124.29);
  EXPECT_DOUBLE_EQ(paper_lead_time_seconds(FailureClass::kPanic), 58.87);
  // Panic chains are the shortest-lead class; MCE the longest (Sec 4.2).
  for (std::size_t c = 0; c < kFailureClassCount; ++c) {
    const auto cls = static_cast<FailureClass>(c);
    if (cls == FailureClass::kPanic) continue;
    EXPECT_GT(paper_lead_time_seconds(cls),
              paper_lead_time_seconds(FailureClass::kPanic));
    if (cls == FailureClass::kMce) continue;
    EXPECT_LT(paper_lead_time_seconds(cls),
              paper_lead_time_seconds(FailureClass::kMce));
  }
}

TEST(PhraseCatalog, IndexOfRoundTripsAndValidates) {
  for (std::size_t i = 0; i < cat().size(); ++i)
    EXPECT_EQ(cat().index_of(cat().phrase(i).tmpl), i);
  EXPECT_THROW(cat().index_of("no such template"), util::InvalidArgument);
  EXPECT_THROW(cat().phrase(cat().size()), util::InvalidArgument);
  EXPECT_FALSE(cat().has_template("no such template"));
}

TEST(FailureClassNames, AllDistinct) {
  std::set<std::string_view> names;
  for (std::size_t c = 0; c < kFailureClassCount; ++c)
    names.insert(failure_class_name(static_cast<FailureClass>(c)));
  EXPECT_EQ(names.size(), kFailureClassCount);
}

}  // namespace
}  // namespace desh::logs
