// src/compile contract tests: CompileConfig field-path validation (incl. the
// DeshConfig cross-section constraints), the op-program text format (golden
// file + bit-exact round trip + total error reporting), the quantization
// codec's fuzzed error bound, compiled-vs-reference agreement tolerances,
// the calibration gate, and compiled serve-vs-observe replay equivalence at
// 1 and 8 monitor threads (label `sanitize` — the threaded half).
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "compile/backend.hpp"
#include "compile/emitter.hpp"
#include "compile/program.hpp"
#include "compile/quant.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "logs/generator.hpp"
#include "util/rng.hpp"

#ifndef DESH_SOURCE_DIR
#define DESH_SOURCE_DIR "."
#endif

namespace desh::compile {
namespace {

bool contains(const std::vector<std::string>& msgs, const std::string& part) {
  for (const std::string& m : msgs)
    if (m.find(part) != std::string::npos) return true;
  return false;
}

// --- CompileConfig validation ---------------------------------------------

TEST(CompileConfig, ValidDefaultsProduceNoViolations) {
  EXPECT_TRUE(core::CompileConfig{}.validate().empty());
  core::CompileConfig quantized;
  quantized.backend = core::BackendKind::kCompiled;
  quantized.quant = core::QuantMode::kInt8;
  EXPECT_TRUE(quantized.validate().empty());
}

TEST(CompileConfig, ViolationsNameTheFieldPath) {
  core::CompileConfig c;
  c.quant = core::QuantMode::kInt8;  // backend left at reference
  c.calibration_records = 0;
  c.max_accuracy_delta = -0.5;
  const auto msgs = c.validate();
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_TRUE(contains(msgs, "compile.quant: "));
  EXPECT_TRUE(contains(msgs, "compile.backend = compiled"));
  EXPECT_TRUE(contains(msgs, "compile.calibration_records: "));
  EXPECT_TRUE(contains(msgs, "compile.max_accuracy_delta: "));
  // The prefix flows through, so ServeConfig/MonitorConfig reuse reports
  // the full path ("serve.monitor.compile.quant").
  EXPECT_TRUE(contains(c.validate("serve.monitor.compile"),
                       "serve.monitor.compile.quant: "));
}

TEST(CompileConfig, DeshConfigCrossSectionNamesBothFieldPaths) {
  core::DeshConfig config;
  config.compile.backend = core::BackendKind::kCompiled;
  config.compile.quant = core::QuantMode::kInt16;
  config.compile.calibration_records = config.adapt.min_replay_records + 1;
  const auto msgs = config.validate();
  EXPECT_TRUE(contains(msgs, "compile.calibration_records: "));
  EXPECT_TRUE(contains(msgs, "adapt.min_replay_records"));
  // Exceed both bounds: each constraint reports separately.
  config.compile.calibration_records = config.adapt.replay_capacity + 1;
  const auto both = config.validate();
  EXPECT_TRUE(contains(both, "adapt.replay_capacity"));
  EXPECT_TRUE(contains(both, "adapt.min_replay_records"));
  // Reference backend never triggers the cross-section constraints.
  config.compile = core::CompileConfig{};
  EXPECT_TRUE(config.validate().empty());
}

TEST(CompileConfig, MonitorConfigIncludesCompileViolations) {
  core::MonitorConfig monitor;
  monitor.compile.quant = core::QuantMode::kInt8;  // backend = reference
  EXPECT_TRUE(contains(monitor.validate(), "monitor.compile.quant: "));
}

// --- program text format ---------------------------------------------------

/// Hand-built program with fixed constants: byte-stable on every platform
/// (no training, no libm), which is what makes the golden file meaningful.
Program tiny_program() {
  Program p;
  p.quant = core::QuantMode::kNone;
  p.embed_dim = 2;
  p.input_width = 3;
  p.hidden = 2;
  p.num_layers = 1;
  p.vocab = 3;
  p.head_out = 4;
  p.history = 2;
  p.time_weight = 0.25f;
  p.embed = {0.5f, -0.5f, 0.125f, -0.125f, 1.0f, -1.0f};
  PackedLayer layer;
  layer.in_width = 3;  // layer 0's input = program input_width
  layer.hidden = 2;
  layer.rows.resize(5 * 4 * 2);  // (in_width + hidden) rows of 4H
  for (std::size_t i = 0; i < layer.rows.size(); ++i)
    layer.rows[i] = 0.0625f * static_cast<float>(i % 7) - 0.125f;
  layer.bias.assign(4 * 2, 0.5f);
  p.layers.push_back(layer);
  p.head.in_width = 2;
  p.head.out_width = 4;
  p.head.rows.resize(2 * 4);  // in_width rows of out_width
  for (std::size_t i = 0; i < p.head.rows.size(); ++i)
    p.head.rows[i] = 0.25f * static_cast<float>(i) - 1.0f;
  p.head.bias.assign(4, -0.25f);
  p.reset_ops = {{OpCode::kResetState, 0}};
  p.step_ops = {{OpCode::kLoadInput, 0}, {OpCode::kLstmStepF32, 0}};
  p.head_ops = {{OpCode::kHeadF32, 0}};
  return p;
}

TEST(Program, GoldenFileRoundTrip) {
  const std::string path =
      std::string(DESH_SOURCE_DIR) + "/tests/golden/compile_program_v1.txt";
  std::ifstream is(path);
  ASSERT_TRUE(is) << "missing golden file " << path;
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string golden = buffer.str();

  // The hand-built program serializes byte-identically to the checked-in
  // golden — any drift in the text format is a persistence break and must
  // bump the format version instead.
  EXPECT_EQ(tiny_program().to_text(), golden);

  // And the golden parses back to a program that re-serializes to itself.
  core::Expected<Program> parsed = Program::from_text(golden);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().to_text(), golden);
  EXPECT_EQ(parsed.value().num_ops(), 4u);
  EXPECT_EQ(parsed.value().hidden, 2u);
}

TEST(Program, RoundTripIsBitExactForEveryQuantMode) {
  for (const core::QuantMode mode :
       {core::QuantMode::kNone, core::QuantMode::kInt8,
        core::QuantMode::kInt16}) {
    Program p = tiny_program();
    if (mode != core::QuantMode::kNone) {
      p.quant = mode;
      // Re-encode every packed section through the codec under test — the
      // quant mode is program-wide (layers and head alike).
      const auto encode = [mode](auto& packed, std::size_t row_count,
                                 std::size_t width) {
        packed.scales.resize(row_count);
        if (mode == core::QuantMode::kInt8)
          packed.q8.resize(row_count * width);
        else
          packed.q16.resize(row_count * width);
        for (std::size_t r = 0; r < row_count; ++r) {
          std::span<const float> row(packed.rows.data() + r * width, width);
          packed.scales[r] =
              mode == core::QuantMode::kInt8
                  ? quantize_row(row, std::span<std::int8_t>(
                                          packed.q8.data() + r * width, width))
                  : quantize_row(row,
                                 std::span<std::int16_t>(
                                     packed.q16.data() + r * width, width));
        }
        packed.rows.clear();
      };
      for (PackedLayer& layer : p.layers)
        encode(layer, layer.in_width + layer.hidden, 4 * layer.hidden);
      encode(p.head, p.head.in_width, p.head.out_width);
      p.step_ops[1].code = mode == core::QuantMode::kInt8
                               ? OpCode::kLstmStepQ8
                               : OpCode::kLstmStepQ16;
      p.head_ops[0].code = mode == core::QuantMode::kInt8 ? OpCode::kHeadQ8
                                                          : OpCode::kHeadQ16;
    }
    const std::string text = p.to_text();
    core::Expected<Program> back = Program::from_text(text);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value().to_text(), text);
  }
}

TEST(Program, MalformedTextIsATotalError) {
  const std::string text = tiny_program().to_text();
  // Arbitrary truncations parse to an error naming a section, never UB.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{10},
                                text.size() / 2, text.size() - 4}) {
    core::Expected<Program> r = Program::from_text(text.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
    EXPECT_NE(r.error().message.find("compile::Program::from_text"),
              std::string::npos);
  }
  // A future format version is a version error, not a parse error.
  std::string future = text;
  const std::string stamp = "desh-compile-program v1";
  future.replace(future.find(stamp), stamp.size(), "desh-compile-program v2");
  core::Expected<Program> r = Program::from_text(future);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, core::ErrorCode::kFormatVersion);
}

// --- quantization codec ----------------------------------------------------

TEST(QuantCodec, FuzzedRowsObeyTheErrorBound) {
  util::Rng rng(20240807);
  std::vector<float> row, decoded;
  std::vector<std::int8_t> q8;
  std::vector<std::int16_t> q16;
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_index(64));
    const float range =
        static_cast<float>(std::pow(10.0, rng.uniform(-3.0, 3.0)));
    row.resize(n);
    for (float& w : row)
      w = range * (2.0f * static_cast<float>(rng.uniform()) - 1.0f);

    // The ideal bound is scale/2; the fp32 reciprocal used while encoding
    // adds up to ~limit * 2^-23 * scale on top (visible at int16, where the
    // limit is large), so the asserted bound carries that slack.
    q8.assign(n, 0);
    decoded.assign(n, 0.0f);
    const float s8 = quantize_row(row, q8);
    dequantize_row(q8, s8, decoded);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_LE(std::abs(row[i] - decoded[i]), s8 * 0.51f + 1e-12f)
          << "int8 iter " << iter << " elem " << i;

    q16.assign(n, 0);
    const float s16 = quantize_row(row, q16);
    dequantize_row(q16, s16, decoded);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_LE(std::abs(row[i] - decoded[i]), s16 * 0.51f + 1e-12f)
          << "int16 iter " << iter << " elem " << i;
    // int16 is never coarser than int8 on the same row.
    EXPECT_LE(s16, s8 + 1e-12f);
  }
}

TEST(QuantCodec, AllZeroRowsRoundTripExactly) {
  const std::vector<float> zeros(16, 0.0f);
  std::vector<std::int8_t> q8(16, 42);
  std::vector<float> decoded(16, 1.0f);
  EXPECT_EQ(quantize_row(zeros, q8), 0.0f);
  dequantize_row(q8, 0.0f, decoded);
  for (float v : decoded) EXPECT_EQ(v, 0.0f);
}

// --- compiled engines over a trained pipeline ------------------------------

class CompiledBackendTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    logs::SyntheticCraySource source(logs::profile_tiny(2024));
    logs::SyntheticLog log = source.generate();
    auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
    test_ = new logs::LogCorpus(std::move(test));
    core::DeshConfig config;
    config.phase1.epochs = 1;
    pipeline_ = new core::DeshPipeline(config);
    pipeline_->fit(train);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
    delete test_;
    test_ = nullptr;
  }

  static std::shared_ptr<const nn::InferenceBackend> backend(
      core::BackendKind kind, core::QuantMode quant) {
    core::CompileConfig c;
    c.backend = kind;
    c.quant = quant;
    auto r = pipeline_->make_backend(c);
    EXPECT_TRUE(r.ok()) << r.error().message;
    return r.value();
  }

  static core::DeshPipeline* pipeline_;
  static logs::LogCorpus* test_;
};

core::DeshPipeline* CompiledBackendTest::pipeline_ = nullptr;
logs::LogCorpus* CompiledBackendTest::test_ = nullptr;

TEST_F(CompiledBackendTest, EmitIsDeterministicAndRoundTrips) {
  const Program a = emit_program(pipeline_->phase2().model(),
                                 core::QuantMode::kInt8);
  const Program b = emit_program(pipeline_->phase2().model(),
                                 core::QuantMode::kInt8);
  const std::string text = a.to_text();
  EXPECT_EQ(text, b.to_text());
  core::Expected<Program> back = Program::from_text(text);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value().to_text(), text);
}

TEST_F(CompiledBackendTest, CompiledAgreesWithReferenceWithinTolerance) {
  const auto reference =
      backend(core::BackendKind::kReference, core::QuantMode::kNone);
  const auto compiled =
      backend(core::BackendKind::kCompiled, core::QuantMode::kNone);
  EXPECT_EQ(reference->name(), "reference");
  EXPECT_EQ(compiled->name(), "compiled");
  const auto& chains = pipeline_->training_chains();
  ASSERT_FALSE(chains.empty());
  // fp32 compiled is not bit-exact to the reference walk (different FMA
  // contraction), but the agreement tolerance is a tested contract.
  EXPECT_LT(mean_score_delta(*reference, *compiled, chains), 1e-3);
  // Quantized engines stay within the calibrated accuracy gate.
  const auto q16 =
      backend(core::BackendKind::kCompiled, core::QuantMode::kInt16);
  EXPECT_EQ(q16->name(), "compiled+quantized");
  EXPECT_LT(mean_score_delta(*reference, *q16, chains),
            core::CompileConfig{}.max_accuracy_delta);
}

TEST_F(CompiledBackendTest, BatchedScoringIsBitIdenticalToSingleRow) {
  const auto compiled =
      backend(core::BackendKind::kCompiled, core::QuantMode::kInt8);
  const auto& chains = pipeline_->training_chains();
  std::vector<const nn::ChainSequence*> same_length;
  for (const nn::ChainSequence& c : chains)
    if (c.size() == chains.front().size()) same_length.push_back(&c);
  const auto batched = compiled->score_sequences(same_length, 1);
  ASSERT_EQ(batched.size(), same_length.size());
  for (std::size_t i = 0; i < same_length.size(); ++i) {
    const auto single = compiled->score_sequence(*same_length[i], 1);
    ASSERT_EQ(batched[i].size(), single.size());
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(batched[i][j].score, single[j].score);
      EXPECT_EQ(batched[i][j].predicted_dt, single[j].predicted_dt);
      EXPECT_EQ(batched[i][j].predicted_phrase, single[j].predicted_phrase);
    }
  }
}

TEST_F(CompiledBackendTest, CalibrationGateRejectsWithoutEvidence) {
  // No calibration sequences -> the gate cannot certify the quantized
  // program. Strict mode surfaces the rejection as an error...
  core::CompileConfig strict;
  strict.backend = core::BackendKind::kCompiled;
  strict.quant = core::QuantMode::kInt8;
  strict.fallback_on_reject = false;
  auto rejected = compile_backend(pipeline_->phase2().model(),
                                  &pipeline_->phase1().model(), strict, {});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, core::ErrorCode::kUnavailable);
  EXPECT_NE(rejected.error().message.find("compile.quant"),
            std::string::npos);
  // ...while the default falls back to the certified fp32 program.
  core::CompileConfig fallback = strict;
  fallback.fallback_on_reject = true;
  auto fell_back = compile_backend(pipeline_->phase2().model(),
                                   &pipeline_->phase1().model(), fallback, {});
  ASSERT_TRUE(fell_back.ok()) << fell_back.error().message;
  EXPECT_EQ(fell_back.value()->name(), "compiled");
}

TEST_F(CompiledBackendTest, MakeBackendRejectsInvalidConfigWithFieldPaths) {
  core::CompileConfig bad;
  bad.quant = core::QuantMode::kInt8;  // backend = reference
  auto r = pipeline_->make_backend(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, core::ErrorCode::kInvalidConfig);
  EXPECT_NE(r.error().message.find("compile.quant"), std::string::npos);
}

// Serve-vs-observe on a compiled engine: a threaded observe_batch replay
// must be bit-identical to the sequential observe walk — same alerts, same
// serialized per-node state — at 1 and at 8 monitor threads.
TEST_F(CompiledBackendTest, CompiledServeVsObserveAgreesAt1And8Threads) {
  core::MonitorConfig sequential_config;
  sequential_config.compile.backend = core::BackendKind::kCompiled;
  sequential_config.compile.quant = core::QuantMode::kInt16;
  core::StreamingMonitor sequential(*pipeline_, sequential_config);
  std::vector<core::MonitorAlert> sequential_alerts;
  for (const logs::LogRecord& record : *test_)
    if (auto alert = sequential.observe(record))
      sequential_alerts.push_back(*alert);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    core::MonitorConfig config = sequential_config;
    config.threads = threads;
    core::StreamingMonitor batched(*pipeline_, config);
    const auto alerts = batched.observe_batch(*test_);
    ASSERT_EQ(alerts.size(), sequential_alerts.size())
        << "threads=" << threads;
    for (std::size_t i = 0; i < alerts.size(); ++i) {
      EXPECT_EQ(alerts[i].node.to_string(),
                sequential_alerts[i].node.to_string());
      EXPECT_EQ(alerts[i].time, sequential_alerts[i].time);
      EXPECT_EQ(alerts[i].score, sequential_alerts[i].score);
      EXPECT_EQ(alerts[i].predicted_lead_seconds,
                sequential_alerts[i].predicted_lead_seconds);
    }
    EXPECT_EQ(batched.serialize_state(), sequential.serialize_state())
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace desh::compile
