// DeltaT calculation, including the paper's Table 4 worked example as a
// golden test: the MCE failure chain whose cumulative deltaTs are
// (7.822, 6.745, 5.811, 4.582, 4.557, 0.000) seconds.
#include "chains/delta_time.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace desh::chains {
namespace {

CandidateSequence make_candidate(std::vector<double> times) {
  CandidateSequence c;
  c.node = logs::NodeId{0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < times.size(); ++i)
    c.events.push_back(ParsedEvent{times[i], static_cast<std::uint32_t>(i + 1)});
  return c;
}

TEST(DeltaTimeCalculator, Table4GoldenExample) {
  // Table 4 timestamps: 03:59:58.466, 03:59:59.543, 04:00:00.477,
  // 04:00:01.706, 04:00:01.731, 04:00:06.288.
  const double base = 3 * 3600 + 59 * 60;  // 03:59:00
  const CandidateSequence chain = make_candidate(
      {base + 58.466, base + 59.543, base + 60.477, base + 61.706,
       base + 61.731, base + 66.288});
  const auto deltas = DeltaTimeCalculator::delta_seconds(chain);
  ASSERT_EQ(deltas.size(), 6u);
  EXPECT_NEAR(deltas[0], 7.822, 1e-9);
  EXPECT_NEAR(deltas[1], 6.745, 1e-9);
  EXPECT_NEAR(deltas[2], 5.811, 1e-9);
  EXPECT_NEAR(deltas[3], 4.582, 1e-9);
  EXPECT_NEAR(deltas[4], 4.557, 1e-9);
  EXPECT_NEAR(deltas[5], 0.0, 1e-9);
}

TEST(DeltaTimeCalculator, TerminalAlwaysZero) {
  const CandidateSequence chain = make_candidate({1.0, 50.0, 300.0});
  const auto deltas = DeltaTimeCalculator::delta_seconds(chain);
  EXPECT_EQ(deltas.back(), 0.0);
  EXPECT_EQ(deltas.front(), 299.0);
}

TEST(DeltaTimeCalculator, MonotonicallyDecreasingForSortedChains) {
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> times;
    double t = 0;
    const int n = 3 + static_cast<int>(rng.uniform_index(10));
    for (int i = 0; i < n; ++i) {
      t += rng.uniform(0.1, 200.0);
      times.push_back(t);
    }
    const auto deltas =
        DeltaTimeCalculator::delta_seconds(make_candidate(times));
    for (std::size_t i = 1; i < deltas.size(); ++i)
      EXPECT_LT(deltas[i], deltas[i - 1]);
    EXPECT_EQ(deltas.back(), 0.0);
  }
}

TEST(DeltaTimeCalculator, ToChainSequenceNormalizes) {
  const CandidateSequence chain = make_candidate({0.0, 300.0, 600.0});
  const nn::ChainSequence seq = DeltaTimeCalculator::to_chain_sequence(chain);
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_NEAR(nn::ChainModel::denormalize_dt(seq[0].dt_norm), 600.0, 1e-3);
  EXPECT_NEAR(nn::ChainModel::denormalize_dt(seq[1].dt_norm), 300.0, 1e-3);
  EXPECT_EQ(seq[2].dt_norm, 0.0f);
  EXPECT_EQ(seq[0].phrase, 1u);
  EXPECT_EQ(seq[2].phrase, 3u);
}

TEST(DeltaTimeCalculator, AdjacentEncodingUsesInterArrivalGaps) {
  const CandidateSequence chain = make_candidate({100.0, 130.0, 190.0, 200.0});
  const nn::ChainSequence seq =
      DeltaTimeCalculator::to_chain_sequence_adjacent(chain);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[0].dt_norm, 0.0f);  // first event has no predecessor
  EXPECT_NEAR(nn::ChainModel::denormalize_dt(seq[1].dt_norm), 30.0, 1e-3);
  EXPECT_NEAR(nn::ChainModel::denormalize_dt(seq[2].dt_norm), 60.0, 1e-3);
  EXPECT_NEAR(nn::ChainModel::denormalize_dt(seq[3].dt_norm), 10.0, 1e-3);
  // Phrases carried through identically to the cumulative encoding.
  const nn::ChainSequence cumulative =
      DeltaTimeCalculator::to_chain_sequence(chain);
  for (std::size_t i = 0; i < seq.size(); ++i)
    EXPECT_EQ(seq[i].phrase, cumulative[i].phrase);
}

TEST(DeltaTimeCalculator, RejectsEmptyCandidate) {
  CandidateSequence empty;
  EXPECT_THROW(DeltaTimeCalculator::delta_seconds(empty),
               util::InvalidArgument);
  EXPECT_THROW(DeltaTimeCalculator::to_chain_sequence_adjacent(empty),
               util::InvalidArgument);
}

}  // namespace
}  // namespace desh::chains
