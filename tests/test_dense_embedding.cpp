#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "nn/dense.hpp"
#include "nn/embedding.hpp"
#include "nn/loss.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace desh::nn {
namespace {

TEST(Dense, ForwardComputesAffineMap) {
  util::Rng rng(1);
  Dense layer(2, 2, rng);
  // Overwrite weights with known values via parameters().
  auto params = layer.parameters();
  ASSERT_EQ(params.size(), 2u);
  Parameter* w = params[0];
  Parameter* b = params[1];
  w->value(0, 0) = 1;
  w->value(0, 1) = 2;
  w->value(1, 0) = 3;
  w->value(1, 1) = 4;
  b->value(0, 0) = 10;
  b->value(0, 1) = 20;
  tensor::Matrix x(1, 2, std::vector<float>{1, 1});
  tensor::Matrix y;
  layer.forward(x, y);
  EXPECT_EQ(y(0, 0), 14.0f);  // 1*1 + 1*3 + 10
  EXPECT_EQ(y(0, 1), 26.0f);  // 1*2 + 1*4 + 20
}

TEST(Dense, ForwardRejectsWrongWidth) {
  util::Rng rng(2);
  Dense layer(3, 2, rng);
  tensor::Matrix x(1, 4), y;
  EXPECT_THROW(layer.forward(x, y), util::InvalidArgument);
}

TEST(Dense, GradcheckWeightsBiasAndInput) {
  util::Rng rng(3);
  Dense layer(4, 3, rng);
  tensor::Matrix x(2, 4);
  for (float& v : x.flat()) v = static_cast<float>(rng.uniform(-1, 1));
  tensor::Matrix target(2, 3);
  for (float& v : target.flat()) v = static_cast<float>(rng.uniform(-1, 1));

  auto loss_fn = [&] {
    tensor::Matrix y;
    layer.forward_inference(x, y);
    return static_cast<double>(MeanSquaredError::forward(y, target));
  };

  tensor::Matrix y, dy, dx;
  layer.forward(x, y);
  MeanSquaredError::forward_backward(y, target, dy);
  zero_grads(layer.parameters());
  layer.backward(dy, dx);

  for (Parameter* p : layer.parameters())
    testutil::expect_matches_numeric_gradient(p->value, p->grad, loss_fn);
  // Input gradient.
  testutil::expect_matches_numeric_gradient(x, dx, loss_fn);
}

TEST(Embedding, ForwardGathersRows) {
  util::Rng rng(4);
  Embedding embed(5, 3, rng);
  const std::uint32_t ids[] = {4, 0, 4};
  tensor::Matrix out;
  embed.forward(ids, out);
  ASSERT_EQ(out.rows(), 3u);
  ASSERT_EQ(out.cols(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(out(0, c), out(2, c));
    EXPECT_EQ(out(0, c), embed.vector(4)[c]);
  }
}

TEST(Embedding, RejectsOutOfVocabulary) {
  util::Rng rng(5);
  Embedding embed(3, 2, rng);
  const std::uint32_t bad[] = {3};
  tensor::Matrix out;
  EXPECT_THROW(embed.forward(bad, out), util::InvalidArgument);
  EXPECT_THROW(embed.vector(7), util::InvalidArgument);
}

TEST(Embedding, BackwardScattersAndAccumulatesDuplicates) {
  util::Rng rng(6);
  Embedding embed(4, 2, rng);
  const std::uint32_t ids[] = {1, 1, 3};
  tensor::Matrix out;
  embed.forward(ids, out);
  tensor::Matrix dout(3, 2, std::vector<float>{1, 2, 10, 20, 5, 6});
  embed.backward(dout);
  Parameter* table = embed.parameters()[0];
  EXPECT_EQ(table->grad(1, 0), 11.0f);  // duplicate id accumulates
  EXPECT_EQ(table->grad(1, 1), 22.0f);
  EXPECT_EQ(table->grad(3, 0), 5.0f);
  EXPECT_EQ(table->grad(0, 0), 0.0f);
}

TEST(Embedding, LoadPretrainedRequiresMatchingShape) {
  util::Rng rng(7);
  Embedding embed(4, 2, rng);
  tensor::Matrix good(4, 2, 0.5f);
  embed.load_pretrained(good);
  EXPECT_EQ(embed.vector(2)[0], 0.5f);
  tensor::Matrix bad(4, 3);
  EXPECT_THROW(embed.load_pretrained(bad), util::InvalidArgument);
}

}  // namespace
}  // namespace desh::nn
