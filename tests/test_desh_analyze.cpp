// tools/desh_analyze behavioral contract, pinned against the fixture tree
// in tests/analyze_fixtures/ (one seeded trigger per pass, plus one waived
// blocking site and one unresolvable lock expression):
//   - the lock-order pass fires exactly twice: one graph cycle (cycle/),
//     one contract contradiction (order/);
//   - the layering pass fires exactly once (alpha includes beta) and no
//     code comment can waive it;
//   - blocking-under-lock fires exactly twice, one active and one waived
//     by a justified comment;
//   - unresolved-lock fires exactly once (a by-reference mutex parameter);
//   - exit codes are stable: 0 clean, 1 findings, 2 usage/contract error;
//   - the --json report shape and the --dot graph dumps are stable.
// The real tree staying clean under the real contracts is a separate ctest
// (desh_analyze_tree, label `analyze`) so an architecture regression points
// at the offending file, not at this fixture test.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

/// Runs `DESH_ANALYZE_BIN <args>`, capturing stdout+stderr. The capture
/// file is pid-unique: ctest runs each TEST as its own process, and a
/// shared path would race under `ctest -j`.
RunResult run_analyze(const std::string& args) {
  const std::string out_path = ::testing::TempDir() + "/desh_analyze_out." +
                               std::to_string(::getpid()) + ".txt";
  const std::string cmd =
      std::string(DESH_ANALYZE_BIN) + " " + args + " > " + out_path + " 2>&1";
  const int status = std::system(cmd.c_str());
  RunResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream is(out_path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  result.output = buffer.str();
  std::remove(out_path.c_str());
  return result;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

RunResult run_on_fixture() {
  return run_analyze("--root " + std::string(DESH_ANALYZE_FIXTURE) +
                     " --json");
}

TEST(DeshAnalyze, LockOrderPassFiresOnCycleAndContractContradiction) {
  const RunResult r = run_on_fixture();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "\"rule\": \"lock-order\""), 2u)
      << r.output;
  // The cycle is caught by the acquisition graph itself — the cycle/AB
  // locks are deliberately absent from the fixture contract.
  EXPECT_EQ(count_occurrences(r.output, "lock-order cycle detected"), 1u)
      << r.output;
  EXPECT_NE(r.output.find("src/cycle/ab.cpp"), std::string::npos) << r.output;
  EXPECT_NE(
      r.output.find("cycle/AB::left_ -> cycle/AB::right_ -> cycle/AB::left_"),
      std::string::npos)
      << r.output;
  // The contradiction is caught by the declared contract, and the message
  // names both the observed edge and the contract line it violates.
  EXPECT_EQ(count_occurrences(r.output, "contradicts the declared order"), 1u)
      << r.output;
  EXPECT_NE(r.output.find("src/order/svc.cpp"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("'order.outer -> order.inner'"), std::string::npos)
      << r.output;
}

TEST(DeshAnalyze, LayeringPassFiresOnceAndIsNotWaivable) {
  const RunResult r = run_on_fixture();
  EXPECT_EQ(count_occurrences(r.output, "\"rule\": \"layering\""), 1u)
      << r.output;
  EXPECT_NE(r.output.find("src/alpha/bad.cpp"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("alpha -> beta"), std::string::npos) << r.output;
  // The declared beta -> alpha edge is clean: it appears in the layer
  // graph, not in the findings.
  EXPECT_EQ(count_occurrences(r.output, "beta -> alpha"), 0u) << r.output;
}

TEST(DeshAnalyze, BlockingPassFiresTwiceWithOneJustifiedWaiver) {
  const RunResult r = run_on_fixture();
  EXPECT_EQ(
      count_occurrences(r.output, "\"rule\": \"blocking-under-lock\""), 2u)
      << r.output;
  EXPECT_EQ(count_occurrences(r.output, "sleep_for while holding"), 2u)
      << r.output;
  // Worker::slow_waived carries a justified waiver comment; Worker::slow is
  // identical but unwaived. Exactly one of the six findings is waived.
  EXPECT_EQ(count_occurrences(r.output, "\"waived\": true"), 1u) << r.output;
  EXPECT_NE(r.output.find("Worker::slow_waived"), std::string::npos)
      << r.output;
}

TEST(DeshAnalyze, UnresolvedLockFiresOnceOnByReferenceMutex) {
  const RunResult r = run_on_fixture();
  EXPECT_EQ(count_occurrences(r.output, "\"rule\": \"unresolved-lock\""), 1u)
      << r.output;
  EXPECT_NE(r.output.find("cannot resolve lock expression 'which'"),
            std::string::npos)
      << r.output;
}

TEST(DeshAnalyze, FixtureTotalsArePinned) {
  const RunResult r = run_on_fixture();
  // 6 findings, 5 active — nothing beyond the seeded triggers fired.
  EXPECT_EQ(count_occurrences(r.output, "\"rule\""), 6u) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "\"waived\": false"), 5u) << r.output;
}

TEST(DeshAnalyze, JsonReportShapeIsStable) {
  const RunResult r = run_on_fixture();
  ASSERT_FALSE(r.output.empty());
  // Top-level sections, in order.
  const std::size_t findings_at = r.output.find("\"findings\": [");
  const std::size_t locks_at = r.output.find("\"lock_order\": {\"nodes\": [");
  const std::size_t layers_at = r.output.find("\"layers\": {\"edges\": ");
  ASSERT_NE(findings_at, std::string::npos) << r.output;
  ASSERT_NE(locks_at, std::string::npos) << r.output;
  ASSERT_NE(layers_at, std::string::npos) << r.output;
  EXPECT_LT(findings_at, locks_at);
  EXPECT_LT(locks_at, layers_at);
  // Every finding carries the full field set of the schema shared with
  // desh_lint, in stable order.
  EXPECT_EQ(count_occurrences(r.output, "\"file\""), 6u + 5u);  // + edges
  EXPECT_EQ(count_occurrences(r.output, "\"severity\": \"error\""), 6u);
  EXPECT_EQ(count_occurrences(r.output, "\"message\""), 6u);
  // Graph edges carry {from, to, file, line, via}; the three observed lock
  // acquisitions and both include edges are all present.
  EXPECT_EQ(count_occurrences(r.output, "\"from\""), 5u) << r.output;
  EXPECT_NE(r.output.find("\"via\": \"beta/api.hpp\""), std::string::npos)
      << r.output;
  // All five fixture mutexes appear as lock nodes, sorted.
  EXPECT_LT(r.output.find("block/Worker::mu_"),
            r.output.find("cycle/AB::left_"));
}

TEST(DeshAnalyze, DotDumpsWriteBothGraphs) {
  const std::string dot_dir = ::testing::TempDir() + "/desh_analyze_dot." +
                              std::to_string(::getpid());
  const RunResult r =
      run_analyze("--root " + std::string(DESH_ANALYZE_FIXTURE) + " --dot " +
                  dot_dir);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::string locks = read_file(dot_dir + "/lock_order.dot");
  const std::string layers = read_file(dot_dir + "/layers.dot");
  EXPECT_NE(locks.find("digraph lock_order"), std::string::npos) << locks;
  EXPECT_NE(locks.find("cycle/AB::left_"), std::string::npos) << locks;
  // Declared-but-unobserved contract edges render dashed so a stale
  // contract is visible at a glance.
  EXPECT_NE(layers.find("digraph layers"), std::string::npos) << layers;
  EXPECT_NE(layers.find("alpha"), std::string::npos) << layers;
  std::filesystem::remove_all(dot_dir);
}

TEST(DeshAnalyze, TextSummaryCountsFindingsAndEdges) {
  const RunResult r =
      run_analyze("--root " + std::string(DESH_ANALYZE_FIXTURE));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find(
                "desh_analyze: 6 finding(s), 5 active, 3 lock edge(s), "
                "2 layer edge(s)"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/cycle/ab.cpp:7: [lock-order]"),
            std::string::npos)
      << r.output;
  // Waived findings stay visible in the text report, marked as such.
  EXPECT_NE(r.output.find("[blocking-under-lock] (waived)"),
            std::string::npos)
      << r.output;
}

TEST(DeshAnalyze, RulesFlagListsEveryRule) {
  const RunResult r = run_analyze("--rules");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output,
            "lock-order\nlayering\nblocking-under-lock\nunresolved-lock\n");
}

TEST(DeshAnalyze, RealTreeIsCleanAndExitsZero) {
  const RunResult r = run_analyze("--root " + std::string(DESH_SOURCE_DIR));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(DeshAnalyze, UsageAndContractErrorsExitTwo) {
  EXPECT_EQ(run_analyze("--no-such-flag").exit_code, 2);
  // A root without src/ is a configuration error, not "clean".
  EXPECT_EQ(run_analyze("--root " + ::testing::TempDir()).exit_code, 2);
  // A tree without its contracts must refuse to bless anything: build a
  // root with an empty src/ and no tools/analyze/.
  const std::string bare = ::testing::TempDir() + "/desh_analyze_bare." +
                           std::to_string(::getpid());
  std::filesystem::create_directories(bare + "/src");
  const RunResult r = run_analyze("--root " + bare);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("lock_order.contract"), std::string::npos)
      << r.output;
  std::filesystem::remove_all(bare);
}

}  // namespace
