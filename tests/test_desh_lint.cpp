// tools/desh_lint behavioral contract, pinned against the fixture tree in
// tests/lint_fixtures/ (one seeded violation per rule + one waived
// counterpart per rule; wal-expected's seed carries its own waiver, which
// must NOT work):
//   - every rule fires EXACTLY once, at the seeded file;
//   - waivers suppress (src/good/ stays silent) — except wal-expected;
//   - exit codes are stable: 0 clean, 1 findings, 2 usage error;
//   - the --json report shape is machine-readable and stable.
// The real tree staying clean is a separate ctest (desh_lint_tree, label
// `lint`) so a convention regression points at the offending file, not at
// this fixture test.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

/// Runs `DESH_LINT_BIN <args>`, capturing stdout. The capture file is
/// pid-unique: ctest runs each TEST as its own process, and a shared path
/// would race under `ctest -j`.
RunResult run_lint(const std::string& args) {
  const std::string out_path = ::testing::TempDir() + "/desh_lint_out." +
                               std::to_string(::getpid()) + ".txt";
  const std::string cmd =
      std::string(DESH_LINT_BIN) + " " + args + " > " + out_path + " 2>&1";
  const int status = std::system(cmd.c_str());
  RunResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream is(out_path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  result.output = buffer.str();
  std::remove(out_path.c_str());
  return result;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(DeshLint, EveryRuleFiresExactlyOnceOnTheFixtureTree) {
  const RunResult r =
      run_lint("--root " + std::string(DESH_LINT_FIXTURE) + " --json");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const struct {
    const char* rule;
    const char* file;
  } expected[] = {
      {"metric-catalog", "src/bad/metric.cpp"},
      {"throw-discipline", "src/bad/throw.cpp"},
      {"raw-sync", "src/bad/rawsync.cpp"},
      {"rng-discipline", "src/bad/rng.cpp"},
      {"include-first", "src/bad/include_first.cpp"},
      {"ordering-comment", "src/bad/ordering.cpp"},
      {"wal-expected", "src/wal/throwing.cpp"},
      {"public-throw", "src/bad/public_throw.hpp"},
  };
  for (const auto& e : expected) {
    const std::size_t want =
        std::string(e.rule) == "public-throw" ? 2u : 1u;
    EXPECT_EQ(count_occurrences(
                  r.output, "\"rule\": \"" + std::string(e.rule) + "\""),
              want)
        << "rule " << e.rule << " did not fire exactly " << want
        << " time(s):\n"
        << r.output;
    EXPECT_NE(r.output.find(e.file), std::string::npos)
        << "rule " << e.rule << " did not point at " << e.file << ":\n"
        << r.output;
  }
  // public-throw fires a second time on its src/logs seed — the extension
  // that polices the whole logs subsystem, .cpp files included, and
  // ignores the seed's own allow() comment.
  EXPECT_NE(r.output.find("src/logs/throwing.cpp"), std::string::npos)
      << r.output;
  // 8 rules, 9 findings — nothing extra fired (in particular the waived
  // throw-discipline on the wal, logs, and public-throw fixture lines
  // stayed waived).
  EXPECT_EQ(count_occurrences(r.output, "\"rule\""), 9u) << r.output;
}

TEST(DeshLint, WaiversSuppressEveryRule) {
  const RunResult r =
      run_lint("--root " + std::string(DESH_LINT_FIXTURE) + " --json");
  // src/good/ holds one waived violation per rule plus comment/string
  // decoys; none may appear in the report.
  EXPECT_EQ(r.output.find("src/good/"), std::string::npos) << r.output;
}

TEST(DeshLint, JsonReportShapeIsStable) {
  const RunResult r =
      run_lint("--root " + std::string(DESH_LINT_FIXTURE) + " --json");
  ASSERT_FALSE(r.output.empty());
  EXPECT_EQ(r.output.front(), '[');
  EXPECT_EQ(r.output[r.output.size() - 2], ']');  // trailing newline after ]
  // Every finding carries the full field set of the schema shared with
  // desh_analyze, in stable order.
  EXPECT_EQ(count_occurrences(r.output, "\"rule\""), 9u);
  EXPECT_EQ(count_occurrences(r.output, "\"file\""), 9u);
  EXPECT_EQ(count_occurrences(r.output, "\"line\""), 9u);
  EXPECT_EQ(count_occurrences(r.output, "\"severity\": \"error\""), 9u);
  // desh_lint drops waived findings entirely, so every reported one is
  // active — the field exists for schema parity with desh_analyze.
  EXPECT_EQ(count_occurrences(r.output, "\"waived\": false"), 9u);
  EXPECT_EQ(count_occurrences(r.output, "\"message\""), 9u);
  // Findings are sorted by (file, line, rule): include_first.cpp first.
  EXPECT_LT(r.output.find("include_first.cpp"), r.output.find("metric.cpp"));
}

TEST(DeshLint, TextReportNamesRuleAndLocation) {
  const RunResult r =
      run_lint("--root " + std::string(DESH_LINT_FIXTURE));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("src/bad/throw.cpp:4: [throw-discipline]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("desh_lint: 9 findings"), std::string::npos)
      << r.output;
}

TEST(DeshLint, RealTreeIsCleanAndExitsZero) {
  const RunResult r = run_lint("--root " + std::string(DESH_SOURCE_DIR));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(DeshLint, UsageErrorsExitTwo) {
  EXPECT_EQ(run_lint("--no-such-flag").exit_code, 2);
  // A root without src/ is a configuration error, not "clean".
  EXPECT_EQ(run_lint("--root " + ::testing::TempDir()).exit_code, 2);
}

}  // namespace
