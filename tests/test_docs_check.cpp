// docs-check: validates that the repository's markdown documentation does
// not rot. Two classes of reference are checked in every *.md at the repo
// root (run via ctest, label `docs`):
//   1. relative markdown links `[text](path)` — http(s)/mailto/# anchors
//      are skipped, anchors are stripped, and the target must exist;
//   2. backtick file references like `src/obs` or `bench/bench_common.hpp`
//      — the path must exist, where a trailing `.*` (glob over header/source
//      pairs) accepts any file in the directory sharing the stem.
// SNIPPETS.md (verbatim exemplar code from other repositories) and ISSUE.md
// (transient per-PR task text that may name files before they exist) are
// exempt. This is the check that would have caught the repository-layout
// table missing src/recovery and src/obs.
// Two coverage contracts ride along: every ROADMAP "## Open items" entry
// and every desh_bench() binary must be referenced from EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#ifndef DESH_SOURCE_DIR
#define DESH_SOURCE_DIR "."
#endif

namespace {

namespace fs = std::filesystem;

const fs::path kRepoRoot{DESH_SOURCE_DIR};

std::vector<fs::path> doc_files() {
  std::vector<fs::path> docs;
  for (const fs::directory_entry& entry : fs::directory_iterator(kRepoRoot)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".md")
      continue;
    const std::string name = entry.path().filename().string();
    if (name == "SNIPPETS.md" || name == "ISSUE.md") continue;
    docs.push_back(entry.path());
  }
  return docs;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// True when `ref` (relative to the repo root) resolves: exact file or
/// directory, or — for `dir/stem.*` style references — any file in `dir`
/// whose name starts with `stem`.
bool reference_resolves(std::string ref) {
  while (!ref.empty() && (ref.back() == '/' || ref.back() == '.'))
    ref.pop_back();
  if (ref.empty()) return false;
  if (fs::exists(kRepoRoot / ref)) return true;
  const fs::path as_path = kRepoRoot / ref;
  const fs::path dir = as_path.parent_path();
  const std::string stem = as_path.filename().string();
  if (!fs::is_directory(dir)) return false;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir))
    if (entry.path().filename().string().rfind(stem, 0) == 0) return true;
  return false;
}

TEST(DocsCheck, DocFilesFound) {
  ASSERT_FALSE(doc_files().empty()) << "no markdown files at " << kRepoRoot;
}

TEST(DocsCheck, RelativeMarkdownLinksResolve) {
  const std::regex link_re(R"(\]\(([^)]+)\))");
  for (const fs::path& doc : doc_files()) {
    const std::string text = read_file(doc);
    for (std::sregex_iterator it(text.begin(), text.end(), link_re), end;
         it != end; ++it) {
      std::string target = (*it)[1].str();
      if (target.rfind("http://", 0) == 0 ||
          target.rfind("https://", 0) == 0 ||
          target.rfind("mailto:", 0) == 0 || target[0] == '#')
        continue;
      target = target.substr(0, target.find('#'));  // strip anchor
      if (target.empty()) continue;
      EXPECT_TRUE(reference_resolves(target))
          << doc.filename().string() << ": broken link target '" << target
          << "'";
    }
  }
}

TEST(DocsCheck, BacktickedPathReferencesResolve) {
  // Only paths rooted in a real source tree are checked; prose backticks
  // (`DeshPipeline`, `--flags`) never match.
  const std::regex path_re(
      R"(`((?:src|tests|bench|examples|tools)/[A-Za-z0-9_.\*/-]*)`)");
  for (const fs::path& doc : doc_files()) {
    const std::string text = read_file(doc);
    for (std::sregex_iterator it(text.begin(), text.end(), path_re), end;
         it != end; ++it) {
      std::string ref = (*it)[1].str();
      // `dir/stem.*` references the stem's header/source pair.
      if (ref.size() >= 2 && ref.compare(ref.size() - 2, 2, ".*") == 0)
        ref.resize(ref.size() - 2);
      EXPECT_TRUE(reference_resolves(ref))
          << doc.filename().string() << ": file reference `" << (*it)[1]
          << "` does not resolve";
    }
  }
}

TEST(DocsCheck, RoadmapOpenItemsCoveredByExperiments) {
  // Every numbered, bold-titled entry under ROADMAP.md "## Open items"
  // must be accounted for in EXPERIMENTS.md (its "Roadmap coverage"
  // section) — landed items point at their bench rows, open items state
  // what the gate will be. This stops the roadmap and the measurement
  // record drifting apart.
  const std::string roadmap = read_file(kRepoRoot / "ROADMAP.md");
  const std::string experiments = read_file(kRepoRoot / "EXPERIMENTS.md");
  const std::size_t begin = roadmap.find("## Open items");
  ASSERT_NE(begin, std::string::npos) << "ROADMAP.md lost '## Open items'";
  std::size_t end = roadmap.find("\n## ", begin);
  if (end == std::string::npos) end = roadmap.size();
  const std::string open_items = roadmap.substr(begin, end - begin);
  const std::regex title_re(R"(\n\s*\d+\.\s+\*\*([^*]+)\*\*)");
  std::size_t entries = 0;
  for (std::sregex_iterator
           it(open_items.begin(), open_items.end(), title_re),
       last;
       it != last; ++it, ++entries) {
    const std::string title = (*it)[1].str();
    EXPECT_NE(experiments.find(title), std::string::npos)
        << "EXPERIMENTS.md does not cover ROADMAP open item '" << title
        << "'";
  }
  EXPECT_GT(entries, 0u) << "no bold-titled entries under '## Open items'";
}

TEST(DocsCheck, BenchBinariesCoveredByExperiments) {
  // Every bench binary registered via desh_bench() must have a row (or at
  // least a backticked mention) in EXPERIMENTS.md — a bench whose purpose
  // and expected runtime are undocumented is a bench nobody reruns.
  const std::string cmake = read_file(kRepoRoot / "bench" / "CMakeLists.txt");
  const std::string experiments = read_file(kRepoRoot / "EXPERIMENTS.md");
  const std::regex bench_re(R"(desh_bench\(([A-Za-z0-9_]+)\))");
  std::size_t benches = 0;
  for (std::sregex_iterator it(cmake.begin(), cmake.end(), bench_re), last;
       it != last; ++it, ++benches) {
    const std::string name = "`" + (*it)[1].str() + "`";
    EXPECT_NE(experiments.find(name), std::string::npos)
        << "EXPERIMENTS.md does not reference bench binary " << name;
  }
  EXPECT_GT(benches, 0u) << "no desh_bench() registrations found";
}

TEST(DocsCheck, EveryToolRuleIsDocumentedInDesign) {
  // Both static-analysis tools declare their full rule set in a kRuleNames
  // array (also served by `--rules`). Every rule name must appear in
  // DESIGN.md — an undocumented rule is one nobody knows how to satisfy or
  // waive.
  const std::string design = read_file(kRepoRoot / "DESIGN.md");
  const std::regex rules_re(
      R"(kRuleNames\[?\]?[^;]*?\{([^;]*)\};)");
  const std::regex name_re(R"re("([a-z-]+)")re");
  std::size_t rules = 0;
  for (const char* tool :
       {"tools/desh_lint/desh_lint.cpp", "tools/analyze/desh_analyze.cpp"}) {
    const std::string source = read_file(kRepoRoot / tool);
    std::smatch block;
    ASSERT_TRUE(std::regex_search(source, block, rules_re))
        << tool << " lost its kRuleNames array";
    const std::string body = block[1].str();
    for (std::sregex_iterator it(body.begin(), body.end(), name_re), last;
         it != last; ++it, ++rules) {
      const std::string name = "`" + (*it)[1].str() + "`";
      EXPECT_NE(design.find(name), std::string::npos)
          << "DESIGN.md does not document rule " << name << " from " << tool;
    }
  }
  // 8 lint rules + 4 analyze rules; a rule added to either tool without
  // extending this expectation still fails the DESIGN.md lookup above.
  EXPECT_EQ(rules, 12u);
}

TEST(DocsCheck, LayoutTableCoversEverySourceSubsystem) {
  // The README repository-layout table must name every src/ subdirectory —
  // the exact drift this PR fixes (src/recovery, src/obs were missing).
  const std::string readme = read_file(kRepoRoot / "README.md");
  for (const fs::directory_entry& entry :
       fs::directory_iterator(kRepoRoot / "src")) {
    if (!entry.is_directory()) continue;
    const std::string ref = "`src/" + entry.path().filename().string() + "`";
    EXPECT_NE(readme.find(ref), std::string::npos)
        << "README.md layout table is missing " << ref;
  }
}

}  // namespace
