#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "core/expected.hpp"
#include "logs/drain_miner.hpp"
#include "logs/generator.hpp"
#include "logs/syslog.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace desh::logs {
namespace {

TEST(DrainMiner, GroupsNumberVariantsOfOneMessage) {
  DrainMiner miner;
  const auto a = miner.add("Job 123 started by user 88");
  const auto b = miner.add("Job 999 started by user 17");
  const auto c = miner.add("Job 5 started by user 404");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(miner.template_count(), 1u);
  EXPECT_EQ(miner.template_text(a), "Job * started by user *");
}

TEST(DrainMiner, SeparatesDistinctMessages) {
  DrainMiner miner;
  const auto a = miner.add("LustreError 0x99 failed");
  const auto b = miner.add("Kernel panic - not syncing now");
  EXPECT_NE(a, b);
  EXPECT_EQ(miner.template_count(), 2u);
}

TEST(DrainMiner, GeneralizesVariableTailTokens) {
  DrainMiner::Config config;
  config.similarity_threshold = 0.5;
  DrainMiner miner(config);
  const auto a = miner.add("mount device sda failed with timeout");
  const auto b = miner.add("mount device sdb failed with busy");
  EXPECT_EQ(a, b);
  EXPECT_EQ(miner.template_text(a), "mount device * failed with *");
}

TEST(DrainMiner, MatchDoesNotLearn) {
  DrainMiner miner;
  miner.add("alpha beta gamma delta");
  const std::size_t before = miner.template_count();
  EXPECT_NE(miner.match("alpha beta gamma delta"), DrainMiner::kNoMatch);
  EXPECT_EQ(miner.match("totally different message here"),
            DrainMiner::kNoMatch);
  EXPECT_EQ(miner.template_count(), before);
}

TEST(DrainMiner, ValidatesInputs) {
  DrainMiner::Config bad;
  bad.tree_depth = 0;
  EXPECT_THROW(DrainMiner{bad}, util::InvalidArgument);
  bad = DrainMiner::Config{};
  bad.similarity_threshold = 0.0;
  EXPECT_THROW(DrainMiner{bad}, util::InvalidArgument);
  DrainMiner miner;
  EXPECT_THROW(miner.add("   "), util::InvalidArgument);
  EXPECT_THROW(miner.template_text(42), util::InvalidArgument);
  EXPECT_EQ(miner.match("   "), DrainMiner::kNoMatch);
}

TEST(DrainMiner, RecoversCatalogGroupingOnGeneratedMessages) {
  // Render each catalog phrase several times with random dynamics: Drain
  // must map all renders of a phrase to one learned template id.
  const PhraseCatalog& catalog = PhraseCatalog::instance();
  DrainMiner miner;
  util::Rng rng(4242);
  std::size_t agreement = 0, total = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const CatalogPhrase& phrase = catalog.phrase(i);
    std::set<std::uint32_t> ids;
    for (int r = 0; r < 6; ++r)
      ids.insert(miner.add(SyntheticCraySource::render_message(phrase, rng)));
    if (ids.size() == 1) ++agreement;
    ++total;
  }
  // Messages whose dynamic part varies in token count can split into a few
  // groups; the bulk must still be grouped perfectly.
  EXPECT_GT(static_cast<double>(agreement) / static_cast<double>(total), 0.75);
}

TEST(Syslog, ParsesCanonicalLine) {
  const auto record =
      parse_syslog_line("Mar 15 10:47:39 c0-0c0s0n2 hwerr: protocol error");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->node.to_string(), "c0-0c0s0n2");
  EXPECT_EQ(record->message, "hwerr: protocol error");
  // Mar 15 = day-of-year 73 (non-leap).
  EXPECT_DOUBLE_EQ(record->timestamp,
                   (73.0 * 24 + 10) * 3600 + 47 * 60 + 39);
}

TEST(Syslog, RejectsMalformedLines) {
  EXPECT_FALSE(parse_syslog_line("").has_value());
  EXPECT_FALSE(parse_syslog_line("continuation of previous").has_value());
  EXPECT_FALSE(parse_syslog_line("Xyz 15 10:47:39 c0-0c0s0n2 m").has_value());
  EXPECT_FALSE(parse_syslog_line("Mar 99 10:47:39 c0-0c0s0n2 m").has_value());
  EXPECT_FALSE(parse_syslog_line("Mar 15 10:99:39 c0-0c0s0n2 m").has_value());
  EXPECT_FALSE(parse_syslog_line("Mar 15 10:47:39 not-a-node m").has_value());
  EXPECT_FALSE(parse_syslog_line("Mar 15 10:47:39 c0-0c0s0n2").has_value());
}

TEST(Syslog, FormatParseRoundTrip) {
  LogRecord record;
  record.timestamp = (73.0 * 24 + 10) * 3600 + 47 * 60 + 39;
  record.node = NodeId::parse("c1-0c2s10n3");
  record.message = "LustreError 0x12 something";
  const std::string line = format_syslog_line(record);
  EXPECT_EQ(line, "Mar 15 10:47:39 c1-0c2s10n3 LustreError 0x12 something");
  const auto back = parse_syslog_line(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_DOUBLE_EQ(back->timestamp, record.timestamp);
  EXPECT_EQ(back->node, record.node);
  EXPECT_EQ(back->message, record.message);
}

TEST(Syslog, LoadsFileSkippingJunk) {
  const std::string path = ::testing::TempDir() + "/desh_syslog.log";
  {
    std::ofstream os(path);
    os << "Jan  2 00:00:10 c0-0c0s0n1 second event\n"
       << "garbage line without structure\n"
       << "Jan  1 23:59:50 c0-0c0s0n0 first event\n";
  }
  core::Expected<LogCorpus> loaded = load_syslog_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  const LogCorpus& corpus = loaded.value();
  ASSERT_EQ(corpus.size(), 2u);  // junk skipped
  EXPECT_LT(corpus[0].timestamp, corpus[1].timestamp);  // sorted
  EXPECT_EQ(corpus[0].message, "first event");
  std::remove(path.c_str());
  core::Expected<LogCorpus> missing = load_syslog_file("/nonexistent/sys.log");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, core::ErrorCode::kIo);
}

TEST(Syslog, RejectsDigitTokensWithTrailingGarbage) {
  // sscanf-style parsing once accepted these ("12abc" read as 12), making
  // parse accept lines format_syslog_line can never emit. Day and clock
  // tokens must now be pure digits.
  EXPECT_FALSE(parse_syslog_line("Mar 15abc 10:47:39 c0-0c0s0n2 m").has_value());
  EXPECT_FALSE(parse_syslog_line("Mar 15 10:47:39xyz c0-0c0s0n2 m").has_value());
  EXPECT_FALSE(parse_syslog_line("Mar 1e1 10:47:39 c0-0c0s0n2 m").has_value());
  EXPECT_FALSE(parse_syslog_line("Mar -5 10:47:39 c0-0c0s0n2 m").has_value());
  EXPECT_FALSE(parse_syslog_line("Mar 15 10:4a:39 c0-0c0s0n2 m").has_value());
  EXPECT_FALSE(parse_syslog_line("Mar 15 +1:47:39 c0-0c0s0n2 m").has_value());
  // Loose field widths without garbage stay accepted (real syslogs vary).
  EXPECT_TRUE(parse_syslog_line("Mar 5 1:2:3 c0-0c0s0n2 m").has_value());
}

TEST(Syslog, FormatParseRoundTripProperty) {
  // Seeded fuzz over node-id shapes, day padding and sub-second truncation:
  // for any in-year record with a non-empty catalog-rendered message,
  // parse(format(r)) must hold node exactly, floor the timestamp to whole
  // seconds, and whitespace-normalize the message.
  const PhraseCatalog& catalog = PhraseCatalog::instance();
  util::Rng rng(20260808);
  for (int trial = 0; trial < 500; ++trial) {
    LogRecord record;
    // Full year span, biased toward day boundaries (where %2d padding and
    // the day-of-year arithmetic have their edge cases).
    if (trial % 3 == 0) {
      const double day = static_cast<double>(rng.uniform_index(365));
      record.timestamp = day * 86400.0 +
                         (rng.uniform() < 0.5 ? rng.uniform(0.0, 2.0)
                                              : 86400.0 - rng.uniform(0.0, 2.0));
      record.timestamp = std::min(record.timestamp, 365.0 * 86400.0 - 1.0);
    } else {
      record.timestamp = rng.uniform(0.0, 365.0 * 86400.0 - 1.0);
    }
    record.node.cabinet_x = static_cast<std::uint16_t>(rng.uniform_index(100));
    record.node.cabinet_y = static_cast<std::uint16_t>(rng.uniform_index(10));
    record.node.chassis = static_cast<std::uint8_t>(rng.uniform_index(3));
    record.node.slot = static_cast<std::uint8_t>(rng.uniform_index(16));
    record.node.node = static_cast<std::uint8_t>(rng.uniform_index(4));
    const CatalogPhrase& phrase =
        catalog.phrase(rng.uniform_index(catalog.size()));
    record.message = SyntheticCraySource::render_message(phrase, rng);

    const std::string line = format_syslog_line(record);
    const auto back = parse_syslog_line(line);
    ASSERT_TRUE(back.has_value()) << line;
    EXPECT_DOUBLE_EQ(back->timestamp, std::floor(record.timestamp)) << line;
    EXPECT_EQ(back->node, record.node) << line;
    EXPECT_EQ(back->message,
              util::join(util::split_whitespace(record.message), " "))
        << line;
    // Idempotence: a parsed record formats back to the identical line.
    EXPECT_EQ(format_syslog_line(*back), line);
  }
}

TEST(Syslog, CanonicalizePreservesOrderAndMatchesRoundTrip) {
  SyntheticCraySource source(profile_tiny(99));
  const LogCorpus records = source.generate().records;
  const LogCorpus canonical = canonicalize_syslog(records);
  ASSERT_EQ(canonical.size(), records.size());  // no empty messages generated
  for (std::size_t i = 0; i < canonical.size(); ++i) {
    EXPECT_EQ(canonical[i].timestamp, std::floor(records[i].timestamp));
    EXPECT_EQ(canonical[i].node, records[i].node);
    if (i > 0)
      EXPECT_LE(canonical[i - 1].timestamp, canonical[i].timestamp);
  }
}

TEST(Syslog, SaveLoadSyslogFileRoundTrips) {
  SyntheticCraySource source(profile_tiny(7));
  LogCorpus records = source.generate().records;
  records.resize(std::min<std::size_t>(records.size(), 200));
  const std::string path = ::testing::TempDir() + "/desh_emit.syslog";
  ASSERT_TRUE(save_syslog_file(records, path).ok());
  core::Expected<LogCorpus> loaded = load_syslog_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  LogCorpus canonical = canonicalize_syslog(records);
  std::stable_sort(canonical.begin(), canonical.end());
  ASSERT_EQ(loaded.value().size(), canonical.size());
  for (std::size_t i = 0; i < canonical.size(); ++i) {
    EXPECT_EQ(loaded.value()[i].timestamp, canonical[i].timestamp);
    EXPECT_EQ(loaded.value()[i].node, canonical[i].node);
    EXPECT_EQ(loaded.value()[i].message, canonical[i].message);
  }
  std::remove(path.c_str());
}

TEST(DrainMiner, IdsAreStableUnderGeneralizationFuzz) {
  // Interleave add() and match() over noisy renders of catalog phrases plus
  // random-token junk. Invariants, checked continuously:
  //   - an id, once issued, always stays < template_count() and its
  //     template only ever *generalizes*: a token may turn into '*'; a '*'
  //     never turns back into a literal, and non-'*' tokens never change;
  //   - match() never learns and never returns a stale id (every returned
  //     id is < template_count()).
  const PhraseCatalog& catalog = PhraseCatalog::instance();
  DrainMiner miner;
  util::Rng rng(777);
  // id -> last observed template token vector
  std::vector<std::vector<std::string>> last_tokens;
  auto tokens_of = [&](std::uint32_t id) {
    return util::split_whitespace(miner.template_text(id));
  };
  for (int step = 0; step < 3000; ++step) {
    std::string message;
    if (rng.uniform() < 0.8) {
      const CatalogPhrase& phrase =
          catalog.phrase(rng.uniform_index(catalog.size()));
      message = SyntheticCraySource::render_message(phrase, rng);
    } else {
      const std::size_t words = 1 + rng.uniform_index(6);
      for (std::size_t w = 0; w < words; ++w) {
        if (w) message += ' ';
        message += "tok" + std::to_string(rng.uniform_index(40));
      }
    }
    if (rng.uniform() < 0.3) {
      const std::uint32_t id = miner.match(message);
      const std::size_t count_before = miner.template_count();
      if (id != DrainMiner::kNoMatch) EXPECT_LT(id, count_before);
      EXPECT_EQ(miner.template_count(), count_before);  // match never learns
    } else {
      const std::size_t count_before = miner.template_count();
      const std::uint32_t id = miner.add(message);
      EXPECT_LE(miner.template_count(), count_before + 1);
      EXPECT_LT(id, miner.template_count());
      if (id < last_tokens.size()) {
        // Existing template: its id did not change, and it evolved by
        // generalization only.
        const std::vector<std::string> now = tokens_of(id);
        const std::vector<std::string>& before = last_tokens[id];
        // template_text collapses '*' runs, so sizes can shrink; compare
        // only when shapes line up (the common, non-collapsed case).
        if (now.size() == before.size()) {
          for (std::size_t t = 0; t < now.size(); ++t) {
            if (before[t] == "*") {
              EXPECT_EQ(now[t], "*") << "'*' reverted to a literal in id "
                                     << id;
            } else {
              EXPECT_TRUE(now[t] == before[t] || now[t] == "*")
                  << "token rewrote instead of generalizing in id " << id;
            }
          }
        }
        last_tokens[id] = now;
      } else {
        last_tokens.resize(miner.template_count());
        last_tokens[id] = tokens_of(id);
      }
    }
    // Every previously issued id still resolves.
    for (std::size_t id = 0; id < last_tokens.size(); ++id)
      EXPECT_FALSE(miner.template_text(static_cast<std::uint32_t>(id)).empty());
  }
  EXPECT_GT(miner.template_count(), 10u);  // the fuzz actually exercised it
}

}  // namespace
}  // namespace desh::logs
