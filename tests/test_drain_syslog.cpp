#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "logs/drain_miner.hpp"
#include "logs/generator.hpp"
#include "logs/syslog.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace desh::logs {
namespace {

TEST(DrainMiner, GroupsNumberVariantsOfOneMessage) {
  DrainMiner miner;
  const auto a = miner.add("Job 123 started by user 88");
  const auto b = miner.add("Job 999 started by user 17");
  const auto c = miner.add("Job 5 started by user 404");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(miner.template_count(), 1u);
  EXPECT_EQ(miner.template_text(a), "Job * started by user *");
}

TEST(DrainMiner, SeparatesDistinctMessages) {
  DrainMiner miner;
  const auto a = miner.add("LustreError 0x99 failed");
  const auto b = miner.add("Kernel panic - not syncing now");
  EXPECT_NE(a, b);
  EXPECT_EQ(miner.template_count(), 2u);
}

TEST(DrainMiner, GeneralizesVariableTailTokens) {
  DrainMiner::Config config;
  config.similarity_threshold = 0.5;
  DrainMiner miner(config);
  const auto a = miner.add("mount device sda failed with timeout");
  const auto b = miner.add("mount device sdb failed with busy");
  EXPECT_EQ(a, b);
  EXPECT_EQ(miner.template_text(a), "mount device * failed with *");
}

TEST(DrainMiner, MatchDoesNotLearn) {
  DrainMiner miner;
  miner.add("alpha beta gamma delta");
  const std::size_t before = miner.template_count();
  EXPECT_NE(miner.match("alpha beta gamma delta"), DrainMiner::kNoMatch);
  EXPECT_EQ(miner.match("totally different message here"),
            DrainMiner::kNoMatch);
  EXPECT_EQ(miner.template_count(), before);
}

TEST(DrainMiner, ValidatesInputs) {
  DrainMiner::Config bad;
  bad.tree_depth = 0;
  EXPECT_THROW(DrainMiner{bad}, util::InvalidArgument);
  bad = DrainMiner::Config{};
  bad.similarity_threshold = 0.0;
  EXPECT_THROW(DrainMiner{bad}, util::InvalidArgument);
  DrainMiner miner;
  EXPECT_THROW(miner.add("   "), util::InvalidArgument);
  EXPECT_THROW(miner.template_text(42), util::InvalidArgument);
  EXPECT_EQ(miner.match("   "), DrainMiner::kNoMatch);
}

TEST(DrainMiner, RecoversCatalogGroupingOnGeneratedMessages) {
  // Render each catalog phrase several times with random dynamics: Drain
  // must map all renders of a phrase to one learned template id.
  const PhraseCatalog& catalog = PhraseCatalog::instance();
  DrainMiner miner;
  util::Rng rng(4242);
  std::size_t agreement = 0, total = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const CatalogPhrase& phrase = catalog.phrase(i);
    std::set<std::uint32_t> ids;
    for (int r = 0; r < 6; ++r)
      ids.insert(miner.add(SyntheticCraySource::render_message(phrase, rng)));
    if (ids.size() == 1) ++agreement;
    ++total;
  }
  // Messages whose dynamic part varies in token count can split into a few
  // groups; the bulk must still be grouped perfectly.
  EXPECT_GT(static_cast<double>(agreement) / static_cast<double>(total), 0.75);
}

TEST(Syslog, ParsesCanonicalLine) {
  const auto record =
      parse_syslog_line("Mar 15 10:47:39 c0-0c0s0n2 hwerr: protocol error");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->node.to_string(), "c0-0c0s0n2");
  EXPECT_EQ(record->message, "hwerr: protocol error");
  // Mar 15 = day-of-year 73 (non-leap).
  EXPECT_DOUBLE_EQ(record->timestamp,
                   (73.0 * 24 + 10) * 3600 + 47 * 60 + 39);
}

TEST(Syslog, RejectsMalformedLines) {
  EXPECT_FALSE(parse_syslog_line("").has_value());
  EXPECT_FALSE(parse_syslog_line("continuation of previous").has_value());
  EXPECT_FALSE(parse_syslog_line("Xyz 15 10:47:39 c0-0c0s0n2 m").has_value());
  EXPECT_FALSE(parse_syslog_line("Mar 99 10:47:39 c0-0c0s0n2 m").has_value());
  EXPECT_FALSE(parse_syslog_line("Mar 15 10:99:39 c0-0c0s0n2 m").has_value());
  EXPECT_FALSE(parse_syslog_line("Mar 15 10:47:39 not-a-node m").has_value());
  EXPECT_FALSE(parse_syslog_line("Mar 15 10:47:39 c0-0c0s0n2").has_value());
}

TEST(Syslog, FormatParseRoundTrip) {
  LogRecord record;
  record.timestamp = (73.0 * 24 + 10) * 3600 + 47 * 60 + 39;
  record.node = NodeId::parse("c1-0c2s10n3");
  record.message = "LustreError 0x12 something";
  const std::string line = format_syslog_line(record);
  EXPECT_EQ(line, "Mar 15 10:47:39 c1-0c2s10n3 LustreError 0x12 something");
  const auto back = parse_syslog_line(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_DOUBLE_EQ(back->timestamp, record.timestamp);
  EXPECT_EQ(back->node, record.node);
  EXPECT_EQ(back->message, record.message);
}

TEST(Syslog, LoadsFileSkippingJunk) {
  const std::string path = ::testing::TempDir() + "/desh_syslog.log";
  {
    std::ofstream os(path);
    os << "Jan  2 00:00:10 c0-0c0s0n1 second event\n"
       << "garbage line without structure\n"
       << "Jan  1 23:59:50 c0-0c0s0n0 first event\n";
  }
  const LogCorpus corpus = load_syslog_file(path);
  ASSERT_EQ(corpus.size(), 2u);  // junk skipped
  EXPECT_LT(corpus[0].timestamp, corpus[1].timestamp);  // sorted
  EXPECT_EQ(corpus[0].message, "first event");
  std::remove(path.c_str());
  EXPECT_THROW(load_syslog_file("/nonexistent/sys.log"), util::IoError);
}

}  // namespace
}  // namespace desh::logs
