#include "chains/extractor.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace desh::chains {
namespace {

// Crafted vocabulary with one phrase per label category.
struct Fixture {
  logs::PhraseVocab vocab;
  std::uint32_t safe, unknown, error, terminal;
  Fixture() {
    safe = vocab.add("Wait4Boot");
    unknown = vocab.add("LustreError *");
    error = vocab.add("Call Trace:");
    terminal = vocab.add("cb_node_unavailable");
  }
};

ParsedLog make_log(const std::vector<ParsedEvent>& events,
                   logs::NodeId node = {0, 0, 0, 0, 0}) {
  ParsedLog log;
  log.by_node[node] = events;
  log.event_count = events.size();
  return log;
}

TEST(ChainExtractor, FiltersSafeAndFormsFailureChain) {
  Fixture f;
  PhraseLabeler labeler(f.vocab);
  // U U safe U U U E terminal — safe phrase must not break the run.
  std::vector<ParsedEvent> events = {
      {0.0, f.unknown},  {10.0, f.unknown}, {15.0, f.safe},
      {20.0, f.unknown}, {30.0, f.unknown}, {40.0, f.unknown},
      {50.0, f.error},   {60.0, f.terminal}};
  ChainExtractor extractor;
  const auto candidates = extractor.extract(make_log(events), labeler);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_TRUE(candidates[0].ends_with_terminal);
  EXPECT_EQ(candidates[0].events.size(), 7u);  // safe dropped
  EXPECT_EQ(candidates[0].start_time(), 0.0);
  EXPECT_EQ(candidates[0].end_time(), 60.0);
}

TEST(ChainExtractor, SplitsOnLargeGaps) {
  Fixture f;
  PhraseLabeler labeler(f.vocab);
  std::vector<ParsedEvent> events;
  for (int i = 0; i < 6; ++i)
    events.push_back({i * 10.0, f.unknown});
  // 1000 s of silence, then another scoreable run.
  for (int i = 0; i < 6; ++i)
    events.push_back({1100.0 + i * 10.0, f.unknown});
  ChainExtractor extractor;
  const auto candidates = extractor.extract(make_log(events), labeler);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_FALSE(candidates[0].ends_with_terminal);
  EXPECT_FALSE(candidates[1].ends_with_terminal);
}

TEST(ChainExtractor, TerminalHardStopsSequence) {
  Fixture f;
  PhraseLabeler labeler(f.vocab);
  std::vector<ParsedEvent> events;
  for (int i = 0; i < 6; ++i) events.push_back({i * 5.0, f.unknown});
  events.push_back({30.0, f.terminal});
  // Post-reboot noise follows immediately; must belong to a new candidate.
  for (int i = 0; i < 6; ++i) events.push_back({35.0 + i * 5.0, f.unknown});
  ChainExtractor extractor;
  const auto candidates = extractor.extract(make_log(events), labeler);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_TRUE(candidates[0].ends_with_terminal);
  EXPECT_EQ(candidates[0].events.size(), 7u);
  EXPECT_FALSE(candidates[1].ends_with_terminal);
}

TEST(ChainExtractor, DropsRunsBelowMinLength) {
  Fixture f;
  PhraseLabeler labeler(f.vocab);
  std::vector<ParsedEvent> events = {
      {0.0, f.unknown}, {5.0, f.unknown}, {10.0, f.error}};
  ChainExtractor extractor;
  EXPECT_TRUE(extractor.extract(make_log(events), labeler).empty());
}

TEST(ChainExtractor, MaintenanceBurstIsNotAFailure) {
  Fixture f;
  PhraseLabeler labeler(f.vocab);
  ParsedLog log;
  // Ten nodes emit the same terminal within seconds: a coordinated
  // shutdown. Each also has a scoreable prelude so length is not the filter.
  for (std::uint8_t n = 0; n < 10; ++n) {
    logs::NodeId node{0, 0, 0, static_cast<std::uint8_t>(n / 4),
                      static_cast<std::uint8_t>(n % 4)};
    std::vector<ParsedEvent> events;
    for (int i = 0; i < 6; ++i)
      events.push_back({100.0 + i, f.unknown});
    events.push_back({110.0 + n * 0.5, f.terminal});
    log.by_node[node] = events;
  }
  ChainExtractor extractor;
  const auto candidates = extractor.extract(log, labeler);
  ASSERT_EQ(candidates.size(), 10u);
  for (const auto& c : candidates)
    EXPECT_FALSE(c.ends_with_terminal)
        << "coordinated shutdown misread as failure";
}

TEST(ChainExtractor, IsolatedTerminalStillAFailure) {
  Fixture f;
  PhraseLabeler labeler(f.vocab);
  ParsedLog log;
  // One node fails alone (plus one unrelated terminal far away in time —
  // below the node threshold).
  std::vector<ParsedEvent> events;
  for (int i = 0; i < 6; ++i) events.push_back({100.0 + i, f.unknown});
  events.push_back({110.0, f.terminal});
  log.by_node[logs::NodeId{0, 0, 0, 0, 0}] = events;
  log.by_node[logs::NodeId{0, 0, 0, 0, 1}] = {
      {4000.0, f.unknown}, {4001.0, f.unknown}, {4002.0, f.unknown},
      {4003.0, f.unknown}, {4004.0, f.unknown}, {4005.0, f.terminal}};
  ChainExtractor extractor;
  const auto candidates = extractor.extract(log, labeler);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_TRUE(candidates[0].ends_with_terminal);
  EXPECT_TRUE(candidates[1].ends_with_terminal);
}

TEST(ChainExtractor, DeterministicOrderByNode) {
  Fixture f;
  PhraseLabeler labeler(f.vocab);
  ParsedLog log;
  std::vector<ParsedEvent> run;
  for (int i = 0; i < 6; ++i) run.push_back({i * 1.0, f.unknown});
  log.by_node[logs::NodeId{0, 0, 1, 0, 0}] = run;
  log.by_node[logs::NodeId{0, 0, 0, 0, 0}] = run;
  ChainExtractor extractor;
  const auto candidates = extractor.extract(log, labeler);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_LT(candidates[0].node, candidates[1].node);
}

TEST(ChainExtractor, FailureChainsFilter) {
  Fixture f;
  CandidateSequence with_terminal;
  with_terminal.ends_with_terminal = true;
  CandidateSequence without;
  without.ends_with_terminal = false;
  const auto chains =
      ChainExtractor::failure_chains({with_terminal, without, with_terminal});
  EXPECT_EQ(chains.size(), 2u);
}

TEST(ChainExtractor, ConfigValidation) {
  ExtractorConfig bad;
  bad.gap_seconds = 0;
  EXPECT_THROW(ChainExtractor{bad}, util::InvalidArgument);
  bad = ExtractorConfig{};
  bad.min_length = 1;
  EXPECT_THROW(ChainExtractor{bad}, util::InvalidArgument);
}

}  // namespace
}  // namespace desh::chains
