// desh::fleet contract tests: router determinism / balance / minimal
// disruption, drain-then-reassign, rolling reload with probation rollback,
// aggregator merge correctness, per-shard serve-vs-observe equivalence
// (including across a rolling model reload), and per-shard WAL restart.
// Shares one trained pipeline fixture (tiny profile, cheap phase 1).
#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <unordered_map>
#include <vector>

#include "desh.hpp"
#include "logs/generator.hpp"

namespace desh::fleet {
namespace {

using core::DeshPipeline;
using core::Expected;
using core::MonitorAlert;
using core::StreamingMonitor;

/// Borrowing shared_ptr over the fixture pipeline (it outlives every test).
std::shared_ptr<const DeshPipeline> share(const DeshPipeline* pipeline) {
  return {pipeline, [](const DeshPipeline*) {}};
}

/// Distinct physical node ids in a fixed scan order (cabinet-major), as many
/// as requested — the synthetic fleet for routing tests and the soak bench.
std::vector<logs::NodeId> synthetic_nodes(std::size_t count) {
  std::vector<logs::NodeId> out;
  out.reserve(count);
  for (std::uint16_t x = 0; out.size() < count; ++x)
    for (std::uint16_t y = 0; y < 8 && out.size() < count; ++y)
      for (std::uint8_t c = 0; c < 3 && out.size() < count; ++c)
        for (std::uint8_t s = 0; s < 16 && out.size() < count; ++s)
          for (std::uint8_t n = 0; n < 4 && out.size() < count; ++n)
            out.push_back(logs::NodeId{x, y, c, s, n});
  return out;
}

FleetOptions manual_options(std::size_t shards) {
  FleetOptions options;
  options.fleet.shards = shards;
  options.shard.start_collector = false;
  options.shard.queue_capacity = std::size_t{1} << 16;
  return options;
}

void expect_same_alerts(const std::vector<MonitorAlert>& expected,
                        const std::vector<MonitorAlert>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].node, actual[i].node);
    EXPECT_EQ(expected[i].time, actual[i].time);
    EXPECT_EQ(expected[i].score, actual[i].score);
    EXPECT_EQ(expected[i].predicted_lead_seconds,
              actual[i].predicted_lead_seconds);
    EXPECT_EQ(expected[i].message, actual[i].message);
  }
}

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    logs::SyntheticCraySource source(logs::profile_tiny(2024));
    logs::SyntheticLog log = source.generate();
    auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
    test_ = new logs::LogCorpus(std::move(test));
    core::DeshConfig config;
    config.phase1.epochs = 1;
    pipeline_ = new DeshPipeline(config);
    pipeline_->fit(train);
    // A second fitted pipeline (distinct object) so reload tests can tell
    // "previous model" and "next model" apart by identity.
    pipeline2_ = new DeshPipeline(config);
    pipeline2_->fit(train);

    // One node's "alert script": every record of the node that raises the
    // stream's first alert, up to and including the trigger.
    StreamingMonitor probe(*pipeline_);
    alert_script_ = new logs::LogCorpus();
    for (const logs::LogRecord& record : *test_) {
      const auto alert = probe.observe(record);
      if (alert) {
        logs::LogCorpus script;
        for (const logs::LogRecord& r : *test_) {
          if (r.node == alert->node) script.push_back(r);
          if (&r == &record) break;
        }
        *alert_script_ = std::move(script);
        break;
      }
    }
    ASSERT_GE(alert_script_->size(), 2u) << "fixture stream never alerted";
  }
  static void TearDownTestSuite() {
    delete alert_script_;
    delete pipeline2_;
    delete pipeline_;
    delete test_;
  }

  /// Seeded random interleaving that preserves each node's record order —
  /// the only order serving guarantees anything about.
  static logs::LogCorpus interleave(const logs::LogCorpus& corpus,
                                    std::uint32_t seed) {
    std::vector<logs::NodeId> node_order;
    std::unordered_map<logs::NodeId, std::vector<const logs::LogRecord*>>
        by_node;
    for (const logs::LogRecord& r : corpus) {
      auto [it, inserted] = by_node.try_emplace(r.node);
      if (inserted) node_order.push_back(r.node);
      it->second.push_back(&r);
    }
    std::vector<std::size_t> next(node_order.size(), 0);
    std::mt19937 rng(seed);
    logs::LogCorpus out;
    out.reserve(corpus.size());
    std::vector<std::size_t> alive(node_order.size());
    for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = i;
    while (!alive.empty()) {
      const std::size_t pick = std::uniform_int_distribution<std::size_t>(
          0, alive.size() - 1)(rng);
      const std::size_t n = alive[pick];
      out.push_back(*by_node.at(node_order[n])[next[n]++]);
      if (next[n] == by_node.at(node_order[n]).size()) {
        alive[pick] = alive.back();
        alive.pop_back();
      }
    }
    return out;
  }

  /// The per-shard reference decision stream: each shard's substream fed
  /// through a lone StreamingMonitor, one monitor per shard.
  static std::vector<std::vector<MonitorAlert>> sequential_reference(
      const DeshPipeline& pipeline, const FleetController& fleet,
      const logs::LogCorpus& stream, std::size_t shards) {
    std::vector<std::vector<MonitorAlert>> out(shards);
    std::vector<std::unique_ptr<StreamingMonitor>> monitors;
    for (std::size_t s = 0; s < shards; ++s)
      monitors.push_back(std::make_unique<StreamingMonitor>(pipeline));
    for (const logs::LogRecord& record : stream) {
      const std::size_t shard = fleet.shard_of(record.node);
      if (auto alert = monitors[shard]->observe(record))
        out[shard].push_back(std::move(*alert));
    }
    return out;
  }

  static logs::LogCorpus* test_;
  static DeshPipeline* pipeline_;
  static DeshPipeline* pipeline2_;
  static logs::LogCorpus* alert_script_;
};

logs::LogCorpus* FleetTest::test_ = nullptr;
DeshPipeline* FleetTest::pipeline_ = nullptr;
DeshPipeline* FleetTest::pipeline2_ = nullptr;
logs::LogCorpus* FleetTest::alert_script_ = nullptr;

// --- router: determinism --------------------------------------------------

TEST(FleetRouter, PlacementIsDeterministicAcrossInstances) {
  const std::vector<logs::NodeId> nodes = synthetic_nodes(1000);
  ShardRouter a(4, 128), b(4, 128);
  for (const logs::NodeId& node : nodes)
    ASSERT_EQ(a.shard_for(node), b.shard_for(node));
}

TEST(FleetRouter, NodePointsArePinnedForever) {
  // Per-shard WAL directories outlive processes, so the ring hash may NEVER
  // change across platforms or releases. These literals pin the splitmix64
  // ring; if this test fails, the change breaks every deployed fleet's
  // shard-to-WAL mapping — fix the code, not the constants.
  EXPECT_EQ(ShardRouter::node_point(logs::NodeId{0, 0, 0, 0, 0}),
            16294208416658607535ULL);
  EXPECT_EQ(ShardRouter::node_point(logs::NodeId{1, 0, 1, 1, 0}),
            6465759643743628917ULL);
  EXPECT_EQ(ShardRouter::node_point(logs::NodeId{12, 3, 2, 15, 3}),
            2089154518533636586ULL);
}

// --- router: balance ------------------------------------------------------

TEST(FleetRouter, BalancesHundredThousandNodesAcrossShards) {
  const std::size_t kNodes = 100000;
  const std::size_t kShards = 4;
  const std::vector<logs::NodeId> nodes = synthetic_nodes(kNodes);
  ShardRouter router(kShards, 128);
  std::vector<std::size_t> counts(kShards, 0);
  for (const logs::NodeId& node : nodes) ++counts[router.shard_for(node)];

  // A consistent-hash ring with P points per shard has per-shard load
  // rel-std ~ 1/sqrt(P) (~9% at P=128) — looser than multinomial, so the
  // bounds are ring bounds, not counting-statistics bounds. Everything here
  // is deterministic; the margins are ~3x the expected deviation.
  const double expected = static_cast<double>(kNodes) / kShards;
  double chi2 = 0.0;
  for (std::size_t s = 0; s < kShards; ++s) {
    const double diff = static_cast<double>(counts[s]) - expected;
    chi2 += diff * diff / expected;
    EXPECT_GT(counts[s], static_cast<std::size_t>(0.7 * expected))
        << "shard " << s << " starved";
    EXPECT_LT(counts[s], static_cast<std::size_t>(1.3 * expected))
        << "shard " << s << " overloaded";
  }
  // E[chi2] ~ (S-1) * n/S * (1/P) * S ~ n/P ~ 780; allow 3x.
  EXPECT_LT(chi2, 2400.0);
}

// --- router: minimal disruption -------------------------------------------

TEST(FleetRouter, DrainRemapsOnlyTheDrainedShardsNodes) {
  const std::vector<logs::NodeId> nodes = synthetic_nodes(20000);
  ShardRouter router(4, 128);
  std::vector<std::size_t> before;
  before.reserve(nodes.size());
  for (const logs::NodeId& node : nodes)
    before.push_back(router.shard_for(node));

  const std::size_t drained = 2;
  ASSERT_TRUE(router.deactivate(drained));
  EXPECT_EQ(router.active_count(), 3u);
  std::size_t remapped = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Placement placement = router.place(nodes[i]);
    if (before[i] == drained) {
      // The drained shard's nodes fail over, visibly marked as such.
      EXPECT_NE(placement.shard, drained);
      EXPECT_TRUE(placement.failover);
      ++remapped;
    } else {
      // Everyone else keeps their placement — the consistent-hash contract.
      EXPECT_EQ(placement.shard, before[i]);
      EXPECT_FALSE(placement.failover);
    }
  }
  EXPECT_GT(remapped, 0u);

  ASSERT_TRUE(router.activate(drained));
  for (std::size_t i = 0; i < nodes.size(); ++i)
    ASSERT_EQ(router.shard_for(nodes[i]), before[i]);
}

TEST(FleetRouter, RefusesToDrainTheLastActiveShard) {
  ShardRouter router(3, 16);
  EXPECT_TRUE(router.deactivate(0));
  EXPECT_FALSE(router.deactivate(0));  // already out
  EXPECT_TRUE(router.deactivate(1));
  EXPECT_FALSE(router.deactivate(2));  // never black-hole the fleet
  EXPECT_TRUE(router.is_active(2));
  EXPECT_EQ(router.active_count(), 1u);
}

// --- options validation ---------------------------------------------------

TEST_F(FleetTest, CreateRejectsInvalidOptionsListingEveryViolation) {
  FleetOptions options;
  options.fleet.shards = 0;
  options.fleet.at_risk_top_k = 0;
  options.shard.queue_capacity = 0;
  const Expected<std::unique_ptr<FleetController>> fleet =
      FleetController::create(share(pipeline_), options);
  ASSERT_FALSE(fleet.ok());
  EXPECT_EQ(fleet.error().code, core::ErrorCode::kInvalidConfig);
  EXPECT_NE(fleet.error().message.find("fleet.shards"), std::string::npos);
  EXPECT_NE(fleet.error().message.find("fleet.at_risk_top_k"),
            std::string::npos);
  EXPECT_NE(fleet.error().message.find("shard.serve.queue_capacity"),
            std::string::npos);
}

TEST_F(FleetTest, CreateRejectsSharedWalDirectoryAcrossShards) {
  FleetOptions options = manual_options(2);
  options.shard.wal.directory = ::testing::TempDir() + "/desh_fleet_one_wal";
  Expected<std::unique_ptr<FleetController>> fleet =
      FleetController::create(share(pipeline_), options);
  ASSERT_FALSE(fleet.ok());
  EXPECT_EQ(fleet.error().code, core::ErrorCode::kInvalidConfig);

  options.fleet.wal_root = ::testing::TempDir() + "/desh_fleet_wal_root";
  fleet = FleetController::create(share(pipeline_), options);
  ASSERT_FALSE(fleet.ok());
  EXPECT_NE(fleet.error().message.find("mutually exclusive"),
            std::string::npos);
}

// --- per-shard serve-vs-observe equivalence -------------------------------

TEST_F(FleetTest, PerShardServingMatchesSequentialObserve) {
  const std::size_t kShards = 3;
  const logs::LogCorpus stream = interleave(*test_, 42);
  Expected<std::unique_ptr<FleetController>> created =
      FleetController::create(share(pipeline_), manual_options(kShards));
  ASSERT_TRUE(created.ok()) << created.error().message;
  FleetController& fleet = *created.value();

  const std::vector<std::vector<MonitorAlert>> reference =
      sequential_reference(*pipeline_, fleet, stream, kShards);
  std::size_t reference_alerts = 0;
  for (const auto& shard : reference) reference_alerts += shard.size();
  ASSERT_GT(reference_alerts, 0u);

  std::vector<std::vector<MonitorAlert>> tapped(kShards);
  fleet.set_shard_tap([&tapped](std::size_t shard,
                                std::span<const logs::LogRecord> records,
                                std::span<const MonitorAlert> alerts) {
    (void)records;
    for (const MonitorAlert& alert : alerts) tapped[shard].push_back(alert);
  });

  ASSERT_EQ(fleet.submit_batch(stream), stream.size());
  fleet.drain();
  for (std::size_t s = 0; s < kShards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    expect_same_alerts(reference[s], tapped[s]);
  }

  const FleetHealth health = fleet.health();
  EXPECT_EQ(health.totals.admitted, stream.size());
  EXPECT_EQ(health.totals.processed, stream.size());
  EXPECT_EQ(health.totals.rejected, 0u);
  EXPECT_EQ(health.totals.shed, 0u);
  EXPECT_EQ(health.totals.alerts, reference_alerts);
  EXPECT_EQ(health.shards, kShards);
  EXPECT_EQ(health.active_shards, kShards);
  EXPECT_GT(health.submit_p99_seconds, 0.0);
  EXPECT_FALSE(health.top_at_risk.empty());
}

TEST_F(FleetTest, EquivalenceHoldsAcrossRollingReload) {
  const std::size_t kShards = 2;
  const logs::LogCorpus stream = interleave(*test_, 7);
  const std::size_t half = stream.size() / 2;
  Expected<std::unique_ptr<FleetController>> created =
      FleetController::create(share(pipeline_), manual_options(kShards));
  ASSERT_TRUE(created.ok()) << created.error().message;
  FleetController& fleet = *created.value();

  // Reference: the swap resets per-node windows at the install boundary, so
  // each shard's stream is "old monitor over the pre-swap substream, then a
  // FRESH new-model monitor over the post-swap substream".
  const logs::LogCorpus first(stream.begin(), stream.begin() + half);
  const logs::LogCorpus second(stream.begin() + half, stream.end());
  std::vector<std::vector<MonitorAlert>> expected =
      sequential_reference(*pipeline_, fleet, first, kShards);
  const std::vector<std::vector<MonitorAlert>> after =
      sequential_reference(*pipeline2_, fleet, second, kShards);
  for (std::size_t s = 0; s < kShards; ++s)
    expected[s].insert(expected[s].end(), after[s].begin(), after[s].end());

  std::vector<std::vector<MonitorAlert>> tapped(kShards);
  fleet.set_shard_tap([&tapped](std::size_t shard,
                                std::span<const logs::LogRecord> records,
                                std::span<const MonitorAlert> alerts) {
    (void)records;
    for (const MonitorAlert& alert : alerts) tapped[shard].push_back(alert);
  });

  ASSERT_EQ(fleet.submit_batch(first), first.size());
  fleet.drain();  // batch boundary: the reload lands exactly here
  const Expected<void> reload = fleet.rolling_reload(share(pipeline2_));
  ASSERT_TRUE(reload.ok()) << reload.error().message;
  EXPECT_EQ(fleet.pipeline().get(), pipeline2_);
  ASSERT_EQ(fleet.submit_batch(second), second.size());
  fleet.drain();

  for (std::size_t s = 0; s < kShards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    expect_same_alerts(expected[s], tapped[s]);
  }
}

TEST_F(FleetTest, CollectorModeMatchesReferenceEndToEnd) {
  const std::size_t kShards = 2;
  const logs::LogCorpus stream = interleave(*test_, 11);
  FleetOptions options;
  options.fleet.shards = kShards;
  options.shard.queue_capacity = stream.size();  // no backpressure
  Expected<std::unique_ptr<FleetController>> created =
      FleetController::create(share(pipeline_), options);
  ASSERT_TRUE(created.ok()) << created.error().message;
  FleetController& fleet = *created.value();

  const std::vector<std::vector<MonitorAlert>> reference =
      sequential_reference(*pipeline_, fleet, stream, kShards);

  ASSERT_EQ(fleet.submit_batch(stream), stream.size());
  fleet.drain();
  fleet.stop();

  // poll_alerts groups by shard in shard-index order, each group in that
  // shard's (deterministic) processing order — so the merged stream equals
  // the per-shard references concatenated.
  std::vector<MonitorAlert> expected;
  for (const std::vector<MonitorAlert>& shard : reference)
    expected.insert(expected.end(), shard.begin(), shard.end());
  expect_same_alerts(expected, fleet.poll_alerts());
}

// --- drain / reassign -----------------------------------------------------

TEST_F(FleetTest, DrainShardFailsOverItsNodesAndRefusesTheLast) {
  const std::size_t kShards = 3;
  Expected<std::unique_ptr<FleetController>> created =
      FleetController::create(share(pipeline_), manual_options(kShards));
  ASSERT_TRUE(created.ok()) << created.error().message;
  FleetController& fleet = *created.value();

  const logs::NodeId node = alert_script_->front().node;
  const std::size_t home = fleet.shard_of(node);
  ASSERT_TRUE(fleet.drain_shard(home).ok());
  EXPECT_FALSE(fleet.is_active(home));
  EXPECT_EQ(fleet.active_count(), kShards - 1);
  EXPECT_NE(fleet.shard_of(node), home);

  // Records now land on the failover shard and still serve.
  ASSERT_EQ(fleet.submit_batch(*alert_script_), alert_script_->size());
  fleet.drain();
  EXPECT_EQ(fleet.poll_alerts().size(), 1u);
  EXPECT_EQ(fleet.health().per_shard[home].serve.processed, 0u);

  const Expected<void> again = fleet.drain_shard(home);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, core::ErrorCode::kUnavailable);

  // Drain down to one shard; the last one is refused.
  std::size_t active = kShards - 1;
  for (std::size_t s = 0; s < kShards && active > 1; ++s)
    if (fleet.is_active(s)) {
      ASSERT_TRUE(fleet.drain_shard(s).ok());
      --active;
    }
  for (std::size_t s = 0; s < kShards; ++s)
    if (fleet.is_active(s)) {
      const Expected<void> last = fleet.drain_shard(s);
      ASSERT_FALSE(last.ok());
      EXPECT_EQ(last.error().code, core::ErrorCode::kUnavailable);
    }
  EXPECT_EQ(fleet.active_count(), 1u);
}

// --- rolling reload -------------------------------------------------------

TEST_F(FleetTest, RollingReloadInstallsOnEveryShard) {
  const std::size_t kShards = 3;
  Expected<std::unique_ptr<FleetController>> created =
      FleetController::create(share(pipeline_), manual_options(kShards));
  ASSERT_TRUE(created.ok()) << created.error().message;
  FleetController& fleet = *created.value();

  std::vector<std::size_t> probed;
  const Expected<void> reload = fleet.rolling_reload(
      share(pipeline2_),
      [&probed](std::size_t shard, serve::InferenceServer& server)
          -> Expected<void> {
        // Probation passes; the reloaded shard must already be installed.
        EXPECT_EQ(server.stats().reloads, 1u);
        probed.push_back(shard);
        return {};
      });
  ASSERT_TRUE(reload.ok()) << reload.error().message;
  EXPECT_EQ(fleet.pipeline().get(), pipeline2_);
  EXPECT_EQ(probed, (std::vector<std::size_t>{0, 1, 2}));
  const FleetHealth health = fleet.health();
  for (const ShardHealth& shard : health.per_shard)
    EXPECT_EQ(shard.serve.reloads, 1u);
}

TEST_F(FleetTest, RollingReloadRollsEveryShardBackOnProbationFailure) {
  const std::size_t kShards = 3;
  Expected<std::unique_ptr<FleetController>> created =
      FleetController::create(share(pipeline_), manual_options(kShards));
  ASSERT_TRUE(created.ok()) << created.error().message;
  FleetController& fleet = *created.value();

  const Expected<void> reload = fleet.rolling_reload(
      share(pipeline2_),
      [](std::size_t shard, serve::InferenceServer&) -> Expected<void> {
        if (shard == 1)
          return core::Error{core::ErrorCode::kUnavailable,
                             "injected probation failure"};
        return {};
      });
  ASSERT_FALSE(reload.ok());
  EXPECT_EQ(reload.error().code, core::ErrorCode::kUnavailable);
  EXPECT_NE(reload.error().message.find("shard 1"), std::string::npos);
  EXPECT_NE(reload.error().message.find("injected probation failure"),
            std::string::npos);

  // The previous model still serves everywhere: shards 0 and 1 were
  // reloaded forward then rolled back (2 installs); shard 2 never moved.
  EXPECT_EQ(fleet.pipeline().get(), pipeline_);
  const FleetHealth health = fleet.health();
  EXPECT_EQ(health.per_shard[0].serve.reloads, 2u);
  EXPECT_EQ(health.per_shard[1].serve.reloads, 2u);
  EXPECT_EQ(health.per_shard[2].serve.reloads, 0u);

  // The fleet still serves the original decision stream after rollback.
  ASSERT_EQ(fleet.submit_batch(*alert_script_), alert_script_->size());
  fleet.drain();
  EXPECT_EQ(fleet.poll_alerts().size(), 1u);
}

// --- per-shard WAL restart ------------------------------------------------

TEST_F(FleetTest, RestartShardRestoresFromItsOwnWal) {
  const std::string root = ::testing::TempDir() + "/desh_fleet_wal";
  std::filesystem::remove_all(root);
  FleetOptions options = manual_options(2);
  options.fleet.wal_root = root;
  options.shard.wal.flush_every_records = 1;  // commit every record
  Expected<std::unique_ptr<FleetController>> created =
      FleetController::create(share(pipeline_), options);
  ASSERT_TRUE(created.ok()) << created.error().message;
  FleetController& fleet = *created.value();

  const logs::NodeId node = alert_script_->front().node;
  const std::size_t home = fleet.shard_of(node);
  ASSERT_EQ(fleet.submit_batch(*alert_script_), alert_script_->size());
  fleet.drain();
  ASSERT_EQ(fleet.poll_alerts().size(), 1u);
  EXPECT_TRUE(
      std::filesystem::exists(root + "/shard-" + std::to_string(home)));
  EXPECT_GT(fleet.health().wal_committed_records, 0u);

  // Restart requires a drain first.
  const Expected<void> premature = fleet.restart_shard(home);
  ASSERT_FALSE(premature.ok());
  EXPECT_EQ(premature.error().code, core::ErrorCode::kInvalidArgument);

  ASSERT_TRUE(fleet.drain_shard(home).ok());
  const Expected<void> restarted = fleet.restart_shard(home);
  ASSERT_TRUE(restarted.ok()) << restarted.error().message;
  EXPECT_TRUE(fleet.is_active(home));

  // The recreated shard replayed its own log tail: the alert decision is
  // reproduced (not re-queued — re-delivery stays the driver's call) and
  // the at-risk view is re-seeded from the replay.
  const auto replayed = fleet.shard_replayed_alerts(home);
  ASSERT_FALSE(replayed.empty());
  EXPECT_EQ(replayed.back().second.node, node);
  const FleetHealth health = fleet.health();
  EXPECT_GT(health.wal_replayed_records, 0u);
  ASSERT_FALSE(health.top_at_risk.empty());
  EXPECT_EQ(health.top_at_risk[0].node, node);
  EXPECT_EQ(health.top_at_risk[0].shard, home);

  // And the restarted shard serves on: its node is routed home again.
  EXPECT_EQ(fleet.shard_of(node), home);
  std::filesystem::remove_all(root);
}

// --- aggregator -----------------------------------------------------------

TEST(FleetAggregatorTest, MergeSumsCountersAndComputesQuantiles) {
  core::FleetConfig config;
  config.at_risk_top_k = 2;
  const std::size_t buckets = submit_latency_bounds().size() + 1;

  ShardHealth a;
  a.shard = 0;
  a.serve.admitted = 100;
  a.serve.processed = 90;
  a.serve.rejected = 5;
  a.serve.shed = 5;
  a.serve.alerts = 2;
  a.wal.committed_seq = 50;
  a.wal.replayed = 3;
  a.submit_latency_counts.assign(buckets, 0);
  a.submit_latency_counts[0] = 10;  // 10 submits <= 1us
  a.at_risk.push_back({logs::NodeId{1, 0, 0, 0, 0}, 0, 100.0, 900.0, 1000.0,
                       "late failure"});

  ShardHealth b;
  b.shard = 1;
  b.active = false;  // drained
  b.serve.admitted = 40;
  b.serve.processed = 40;
  b.serve.alerts = 1;
  b.wal.committed_seq = 25;
  b.submit_latency_counts.assign(buckets, 0);
  b.submit_latency_counts[4] = 10;  // 10 submits <= 20us
  b.at_risk.push_back({logs::NodeId{2, 0, 0, 0, 0}, 1, 100.0, 100.0, 200.0,
                       "soonest failure"});
  b.at_risk.push_back({logs::NodeId{3, 0, 0, 0, 0}, 1, 100.0, 400.0, 500.0,
                       "middle failure"});

  const FleetHealth merged = FleetAggregator::merge(config, {a, b});
  EXPECT_EQ(merged.shards, 2u);
  EXPECT_EQ(merged.active_shards, 1u);
  EXPECT_EQ(merged.totals.admitted, 140u);
  EXPECT_EQ(merged.totals.processed, 130u);
  EXPECT_EQ(merged.totals.rejected, 5u);
  EXPECT_EQ(merged.totals.shed, 5u);
  EXPECT_EQ(merged.totals.alerts, 3u);
  EXPECT_EQ(merged.wal_committed_records, 75u);
  EXPECT_EQ(merged.wal_replayed_records, 3u);
  // 20 observations: 10 at <=1us, 10 at <=20us. The upper-bound p50 is the
  // first bucket reaching 10 cumulative; p99 needs 19.8 -> the 20us bucket.
  EXPECT_DOUBLE_EQ(merged.submit_p50_seconds, 1e-6);
  EXPECT_DOUBLE_EQ(merged.submit_p99_seconds, 2e-5);
  // Top-K = 2 soonest predicted failures fleet-wide, sorted.
  ASSERT_EQ(merged.top_at_risk.size(), 2u);
  EXPECT_EQ(merged.top_at_risk[0].message, "soonest failure");
  EXPECT_EQ(merged.top_at_risk[1].message, "middle failure");
  ASSERT_EQ(merged.per_shard.size(), 2u);
  EXPECT_EQ(merged.per_shard[1].shard, 1u);
}

TEST(FleetAggregatorTest, AtRiskTableUpsertsExpiresAndForgets) {
  core::FleetConfig config;
  config.alert_horizon_seconds = 100.0;
  FleetAggregator aggregator(config);

  const logs::NodeId node{1, 0, 1, 1, 0};
  MonitorAlert alert;
  alert.node = node;
  alert.time = 10.0;
  alert.predicted_lead_seconds = 60.0;
  alert.message = "first";
  aggregator.on_batch(0, {}, std::span<const MonitorAlert>(&alert, 1));
  ASSERT_EQ(aggregator.shard_at_risk(0).size(), 1u);

  // A re-alert replaces the node's entry (no duplicates).
  alert.time = 20.0;
  alert.message = "second";
  aggregator.on_batch(0, {}, std::span<const MonitorAlert>(&alert, 1));
  std::vector<AtRiskNode> at_risk = aggregator.shard_at_risk(0);
  ASSERT_EQ(at_risk.size(), 1u);
  EXPECT_EQ(at_risk[0].message, "second");
  EXPECT_DOUBLE_EQ(at_risk[0].predicted_failure_time, 80.0);

  // The stream clock advances with observed records; past the horizon the
  // entry expires out of the view.
  logs::LogRecord tick;
  tick.timestamp = 121.0;  // 121 - 20 > 100
  tick.node = logs::NodeId{9, 9, 0, 0, 0};
  aggregator.on_batch(1, std::span<const logs::LogRecord>(&tick, 1), {});
  EXPECT_TRUE(aggregator.shard_at_risk(0).empty());

  // forget_shard drops a restarted shard's entries entirely.
  alert.time = 122.0;
  aggregator.on_batch(0, {}, std::span<const MonitorAlert>(&alert, 1));
  ASSERT_EQ(aggregator.shard_at_risk(0).size(), 1u);
  aggregator.forget_shard(0);
  EXPECT_TRUE(aggregator.shard_at_risk(0).empty());
}

}  // namespace
}  // namespace desh::fleet
