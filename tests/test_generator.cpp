#include "logs/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "logs/template_miner.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace desh::logs {
namespace {

SyntheticLog generate_tiny(std::uint64_t seed = 42) {
  return SyntheticCraySource(profile_tiny(seed)).generate();
}

TEST(SyntheticCraySource, TopologyMatchesCrayPackaging) {
  SyntheticCraySource source(profile_tiny());
  const auto& nodes = source.nodes();
  EXPECT_EQ(nodes.size(), profile_tiny().node_count);
  for (const NodeId& n : nodes) {
    EXPECT_LT(n.chassis, 3);
    EXPECT_LT(n.slot, 16);
    EXPECT_LT(n.node, 4);
  }
  // All distinct.
  auto sorted = nodes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(SyntheticCraySource, DeterministicForSameSeed) {
  const SyntheticLog a = generate_tiny(7);
  const SyntheticLog b = generate_tiny(7);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].timestamp, b.records[i].timestamp);
    EXPECT_EQ(a.records[i].message, b.records[i].message);
  }
  EXPECT_EQ(a.truth.failures.size(), b.truth.failures.size());
}

TEST(SyntheticCraySource, DifferentSeedsProduceDifferentLogs) {
  const SyntheticLog a = generate_tiny(1);
  const SyntheticLog b = generate_tiny(2);
  bool any_difference = a.records.size() != b.records.size();
  for (std::size_t i = 0; !any_difference && i < a.records.size(); ++i)
    any_difference = a.records[i].message != b.records[i].message;
  EXPECT_TRUE(any_difference);
}

TEST(SyntheticCraySource, RecordsAreTimeSortedAndInRange) {
  const SyntheticLog log = generate_tiny();
  ASSERT_FALSE(log.records.empty());
  for (std::size_t i = 1; i < log.records.size(); ++i)
    EXPECT_LE(log.records[i - 1].timestamp, log.records[i].timestamp);
  EXPECT_LE(log.records.back().timestamp, log.truth.duration_seconds + 1.0);
}

TEST(SyntheticCraySource, FailureCountsNearProfile) {
  const SystemProfile profile = profile_tiny();
  const SyntheticLog log = generate_tiny();
  // Placement can drop a few on saturation, never add.
  EXPECT_LE(log.truth.failures.size(), profile.failure_count + 18);  // +coverage
  EXPECT_GE(log.truth.failures.size(), profile.failure_count * 8 / 10);
  EXPECT_LE(log.truth.lookalikes.size(), profile.lookalike_count);
  EXPECT_GE(log.truth.lookalikes.size(), profile.lookalike_count * 7 / 10);
  EXPECT_EQ(log.truth.maintenance.size(), profile.maintenance_windows);
}

TEST(SyntheticCraySource, EveryPatternVariantAppearsInTraining) {
  const SyntheticLog log = generate_tiny();
  const PhraseCatalog& catalog = PhraseCatalog::instance();
  std::map<std::pair<std::size_t, std::size_t>, int> train_counts;
  for (const FailureEvent& f : log.truth.failures)
    if (f.terminal_time < log.truth.split_time && !f.novel)
      ++train_counts[{static_cast<std::size_t>(f.failure_class), f.variant}];
  for (std::size_t c = 0; c < kFailureClassCount; ++c) {
    const auto cls = static_cast<FailureClass>(c);
    for (std::size_t v = 0; v < catalog.failure_patterns(cls).size(); ++v)
      EXPECT_GE((train_counts[{c, v}]), 1)
          << failure_class_name(cls) << " variant " << v;
  }
}

TEST(SyntheticCraySource, NovelFlagsOnlyInTestWindow) {
  const SyntheticLog log = generate_tiny();
  std::size_t test_count = 0, novel_count = 0;
  for (const FailureEvent& f : log.truth.failures) {
    if (f.novel) {
      ++novel_count;
      EXPECT_GE(f.terminal_time, log.truth.split_time);
    }
    if (f.terminal_time >= log.truth.split_time) ++test_count;
  }
  // Exact-count assignment: round(fraction * test failures).
  const auto expected = static_cast<std::size_t>(std::round(
      profile_tiny().novel_failure_fraction * static_cast<double>(test_count)));
  EXPECT_EQ(novel_count, expected);
  EXPECT_EQ(log.truth.test_failure_count(), test_count);
}

TEST(SyntheticCraySource, NoSameNodeAnomalyOverlap) {
  const SyntheticLog log = generate_tiny();
  struct Window {
    double start, end;
  };
  std::map<NodeId, std::vector<Window>> windows;
  for (const FailureEvent& f : log.truth.failures)
    windows[f.node].push_back({f.start_time, f.terminal_time});
  for (const LookalikeEvent& l : log.truth.lookalikes)
    windows[l.node].push_back({l.start_time, l.end_time});
  for (auto& [node, w] : windows) {
    std::sort(w.begin(), w.end(),
              [](const Window& a, const Window& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < w.size(); ++i)
      EXPECT_GT(w[i].start, w[i - 1].end) << node.to_string();
  }
}

TEST(SyntheticCraySource, ChainAnchorTimingMatchesLeadDesign) {
  // The phrase at index 4 (the decision point after 5 observed phrases)
  // must sit roughly the class's Table 7 lead time before the terminal.
  SystemProfile profile = profile_tiny();
  profile.failure_count = 120;  // more samples for a tight mean
  const SyntheticLog log = SyntheticCraySource(profile).generate();

  // Recover per-failure anchor gaps from the raw records.
  std::array<util::RunningStats, kFailureClassCount> anchor_gap;
  for (const FailureEvent& f : log.truth.failures) {
    if (f.novel) continue;
    std::vector<double> times;
    for (const LogRecord& r : log.records) {
      if (!(r.node == f.node)) continue;
      if (r.timestamp < f.start_time - 0.5 ||
          r.timestamp > f.terminal_time + 0.5)
        continue;
      // Only chain phrases (Error/Unknown) count; benign noise interleaves.
      const std::string tmpl = TemplateMiner::extract(r.message);
      const PhraseCatalog& cat = PhraseCatalog::instance();
      if (!cat.has_template(tmpl)) continue;
      if (cat.phrase(cat.index_of(tmpl)).label == PhraseLabel::kSafe) continue;
      times.push_back(r.timestamp);
    }
    if (times.size() < 6) continue;
    std::sort(times.begin(), times.end());
    anchor_gap[static_cast<std::size_t>(f.failure_class)].add(times.back() -
                                                              times[4]);
  }
  for (std::size_t c = 0; c < kFailureClassCount; ++c) {
    const auto cls = static_cast<FailureClass>(c);
    if (anchor_gap[c].count() < 8) continue;  // class too rare this seed
    const double target = paper_lead_time_seconds(cls);
    EXPECT_NEAR(anchor_gap[c].mean(), target, target * 0.35)
        << failure_class_name(cls);
  }
}

TEST(SyntheticCraySource, Table8ContributionsApproximateTargets) {
  // Use a bigger trace for stable ratios.
  SystemProfile profile = profile_tiny();
  profile.failure_count = 150;
  profile.node_count = 48;
  profile.duration_hours = 24.0;
  const SyntheticLog log = SyntheticCraySource(profile).generate();
  const PhraseCatalog& catalog = PhraseCatalog::instance();

  std::map<std::string, std::pair<std::size_t, std::size_t>> counts;
  std::map<NodeId, std::vector<std::pair<double, double>>> windows;
  for (const FailureEvent& f : log.truth.failures)
    windows[f.node].emplace_back(f.start_time - 1.0, f.terminal_time + 1.0);
  for (const LogRecord& r : log.records) {
    const std::string tmpl = TemplateMiner::extract(r.message);
    if (!catalog.has_template(tmpl)) continue;
    const CatalogPhrase& p = catalog.phrase(catalog.index_of(tmpl));
    if (!p.failure_contribution) continue;
    auto& [total, in_fail] = counts[tmpl];
    ++total;
    for (const auto& [s, e] : windows[r.node])
      if (r.timestamp >= s && r.timestamp <= e) {
        ++in_fail;
        break;
      }
  }
  std::size_t checked = 0;
  for (const auto& [tmpl, pair] : counts) {
    const auto& [total, in_fail] = pair;
    if (total < 25) continue;  // too rare for a ratio test
    const double target = *catalog.phrase(catalog.index_of(tmpl))
                               .failure_contribution;
    const double measured = static_cast<double>(in_fail) / total;
    EXPECT_NEAR(measured, target, 0.15) << tmpl;
    ++checked;
  }
  EXPECT_GE(checked, 6u);  // a majority of Table 8 phrases were verifiable
}

TEST(SyntheticCraySource, MaintenanceShutdownsAreCoordinated) {
  const SyntheticLog log = generate_tiny();
  for (const MaintenanceEvent& m : log.truth.maintenance) {
    EXPECT_GE(m.nodes.size(), 3u);
    // Every affected node logs "System: halted" near the window.
    for (const NodeId& node : m.nodes) {
      bool found = false;
      for (const LogRecord& r : log.records) {
        if (r.node == node && std::abs(r.timestamp - m.time) < 60.0 &&
            TemplateMiner::extract(r.message) == "System: halted")
          found = true;
      }
      EXPECT_TRUE(found) << node.to_string();
    }
  }
}

TEST(SyntheticCraySource, ProfilesValidated) {
  SystemProfile bad = profile_tiny();
  bad.node_count = 2;
  EXPECT_THROW((SyntheticCraySource(bad)), util::InvalidArgument);
  bad = profile_tiny();
  bad.duration_hours = 0;
  EXPECT_THROW((SyntheticCraySource(bad)), util::InvalidArgument);
}

TEST(SystemProfiles, PresetsMatchTable1) {
  const auto profiles = all_system_profiles();
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_EQ(profiles[0].name, "M1");
  EXPECT_EQ(profiles[0].machine_type, "Cray XC30");
  EXPECT_EQ(profiles[0].paper_nodes, 5600u);
  EXPECT_EQ(profiles[1].paper_size, "150GB");
  EXPECT_EQ(profiles[2].paper_duration, "8 months");
  EXPECT_EQ(profiles[3].machine_type, "Cray XC40/XC30");
  for (const SystemProfile& p : profiles) {
    double mix_total = 0;
    for (double w : p.class_mix) mix_total += w;
    EXPECT_NEAR(mix_total, 1.0, 1e-9) << p.name;
    EXPECT_GT(p.paper.recall, 80.0);
    EXPECT_EQ(p.train_fraction, 0.3);
  }
  // M2 carries the Hardware/FS-heavy mix that tops Fig 7's lead times.
  EXPECT_GT(profiles[1].class_mix[4], profiles[0].class_mix[4]);
  EXPECT_LT(profiles[1].class_mix[5], profiles[0].class_mix[5]);
}

}  // namespace
}  // namespace desh::logs
