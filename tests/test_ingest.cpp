// desh::ingest contract tests. The load-bearing ones:
//   - LineSplitter reassembles torn lines correctly under RANDOM chunking
//     (the chunk boundary is adversarial input, not a happy path);
//   - SyslogViewParser accepts/rejects/produces EXACTLY what the batch
//     logs::parse_syslog_line does, fuzzed over valid renders, whitespace
//     mess, and junk;
//   - end-to-end equivalence: raw text through IngestPump -> manual-pump
//     InferenceServer yields the same decision stream as the canonicalized
//     corpus through StreamingMonitor::observe, at 1 and 8 monitor threads;
//   - a novel template arriving as raw text alone reaches desh::adapt's
//     OOV drift detector.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "adapt/controller.hpp"
#include "desh.hpp"
#include "ingest/line_splitter.hpp"
#include "ingest/pump.hpp"
#include "ingest/syslog_view.hpp"
#include "ingest/template_tracker.hpp"
#include "logs/generator.hpp"
#include "logs/syslog.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace desh::ingest {
namespace {

using core::DeshPipeline;
using core::MonitorAlert;
using core::StreamingMonitor;

// --- config validation ------------------------------------------------------

TEST(IngestConfig, ValidateReportsEveryViolationWithFieldPaths) {
  core::IngestConfig config;
  EXPECT_TRUE(config.validate().empty());

  config.chunk_bytes = 0;
  config.max_line_bytes = 0;
  config.retry_backoff_seconds = -1.0;
  config.drain_tree_depth = 0;
  config.drain_similarity = 1.5;
  const std::vector<std::string> violations = config.validate();
  ASSERT_EQ(violations.size(), 5u);
  auto has = [&](const std::string& needle) {
    for (const std::string& v : violations)
      if (v.rfind(needle, 0) == 0) return true;
    return false;
  };
  EXPECT_TRUE(has("ingest.chunk_bytes"));
  EXPECT_TRUE(has("ingest.max_line_bytes"));
  EXPECT_TRUE(has("ingest.retry_backoff_seconds"));
  EXPECT_TRUE(has("ingest.drain_tree_depth"));
  EXPECT_TRUE(has("ingest.drain_similarity"));

  // Custom prefix flows through (the fleet/serve convention).
  EXPECT_EQ(config.validate("pump").front().rfind("pump.", 0), 0u);
}

// --- line splitter ----------------------------------------------------------

TEST(LineSplitter, ReassemblesTornLinesUnderRandomChunking) {
  util::Rng rng(20260808);
  std::string text;
  std::vector<std::string> expected;
  for (std::size_t i = 0; i < 500; ++i) {
    std::string line = "line " + std::to_string(i);
    const std::size_t pad = rng.uniform_index(40);
    for (std::size_t p = 0; p < pad; ++p)
      line.push_back(static_cast<char>('a' + rng.uniform_index(26)));
    expected.push_back(line);
    text += line;
    text += '\n';
  }

  for (int trial = 0; trial < 20; ++trial) {
    LineSplitter splitter(1024);
    std::vector<std::string> got;
    std::size_t at = 0;
    while (at < text.size()) {
      const std::size_t n =
          std::min(text.size() - at, 1 + rng.uniform_index(37));
      splitter.begin_chunk(std::string_view(text).substr(at, n));
      at += n;
      std::string_view line;
      while (splitter.next(line)) got.emplace_back(line);
    }
    std::string_view tail;
    if (splitter.finish(tail)) got.emplace_back(tail);
    ASSERT_EQ(got, expected) << "trial " << trial;
    EXPECT_GT(splitter.stats().torn_lines, 0u) << "trial " << trial;
    EXPECT_EQ(splitter.stats().bytes, text.size());
    EXPECT_EQ(splitter.stats().lines, expected.size());
  }
}

TEST(LineSplitter, DeliversFinalUnterminatedLine) {
  LineSplitter splitter(64);
  splitter.begin_chunk("complete\npartial");
  std::string_view line;
  ASSERT_TRUE(splitter.next(line));
  EXPECT_EQ(line, "complete");
  EXPECT_FALSE(splitter.next(line));
  ASSERT_TRUE(splitter.finish(line));
  EXPECT_EQ(line, "partial");
  EXPECT_FALSE(splitter.finish(line));  // idempotent
}

TEST(LineSplitter, DropsOversizeLinesWholeAndRecovers) {
  LineSplitter splitter(8);
  // A 30-byte line torn across three chunks, then a healthy line.
  splitter.begin_chunk("0123456789");
  std::string_view line;
  EXPECT_FALSE(splitter.next(line));
  splitter.begin_chunk("0123456789");
  EXPECT_FALSE(splitter.next(line));
  splitter.begin_chunk("0123456789\nok\n");
  ASSERT_TRUE(splitter.next(line));
  EXPECT_EQ(line, "ok");
  EXPECT_FALSE(splitter.next(line));
  EXPECT_EQ(splitter.stats().oversize_lines, 1u);
  EXPECT_EQ(splitter.stats().lines, 1u);

  // Oversize fully inside one chunk.
  splitter.begin_chunk("ab0123456789\nfine\n");
  ASSERT_TRUE(splitter.next(line));
  EXPECT_EQ(line, "fine");
  EXPECT_EQ(splitter.stats().oversize_lines, 2u);

  // Oversize running off the end of the stream is not delivered.
  splitter.begin_chunk("0123456789abcdef");
  EXPECT_FALSE(splitter.next(line));
  EXPECT_FALSE(splitter.finish(line));
  EXPECT_EQ(splitter.stats().oversize_lines, 3u);
}

// --- view parser vs batch parser --------------------------------------------

void expect_parser_agreement(std::string_view line, SyslogViewParser& parser) {
  const std::optional<logs::LogRecord> batch = logs::parse_syslog_line(line);
  ParsedLine streamed;
  const bool ok = parser.parse(line, streamed);
  ASSERT_EQ(ok, batch.has_value()) << "disagreement on: [" << line << "]";
  if (!ok) return;
  EXPECT_EQ(streamed.timestamp, batch->timestamp) << line;
  EXPECT_EQ(streamed.node, batch->node) << line;
  EXPECT_EQ(streamed.message, batch->message) << line;
  const logs::LogRecord owned = SyslogViewParser::to_record(streamed);
  EXPECT_EQ(owned.message, batch->message);
}

TEST(SyslogViewParser, AgreesWithBatchParserOnFuzzedLines) {
  util::Rng rng(777);
  const logs::PhraseCatalog& catalog = logs::PhraseCatalog::instance();
  SyslogViewParser parser;
  const char* junk[] = {
      "",
      "   ",
      "not a syslog line",
      "Mar 5",
      "Mar 99 10:00:00 c0-0c0s0n2 msg",
      "Mar 15abc 10:00:00 c0-0c0s0n2 msg",
      "Mar 15 10:00:61 c0-0c0s0n2 msg",
      "Mar 15 1e1:00:00 c0-0c0s0n2 msg",
      "Mar 15 10:00:00 c0-0c0s0n2",
      "Mar 15 10:00:00 notanode msg",
      "Xyz 15 10:00:00 c0-0c0s0n2 msg",
      "Mar 15 10:00:00 c0-0c0s0n2    ",
      "\tMar  5  1:2:3  c1-2c1s4n3   spaced   out   message  ",
  };
  for (const char* line : junk) expect_parser_agreement(line, parser);

  for (int trial = 0; trial < 2000; ++trial) {
    logs::LogRecord record;
    record.timestamp =
        std::floor(rng.uniform(0.0, 365.0 * 86400.0));
    record.node =
        logs::NodeId{static_cast<std::uint16_t>(rng.uniform_index(100)),
                     static_cast<std::uint16_t>(rng.uniform_index(10)),
                     static_cast<std::uint8_t>(rng.uniform_index(3)),
                     static_cast<std::uint8_t>(rng.uniform_index(16)),
                     static_cast<std::uint8_t>(rng.uniform_index(4))};
    const logs::CatalogPhrase& phrase =
        catalog.phrases()[rng.uniform_index(catalog.phrases().size())];
    record.message = logs::SyntheticCraySource::render_message(phrase, rng);
    std::string line = logs::format_syslog_line(record);

    // A third of the trials get whitespace mess or a truncation mutation.
    const std::size_t mutation = rng.uniform_index(6);
    if (mutation == 0) line = "  " + line + "  ";
    if (mutation == 1) {
      const std::size_t at = 1 + rng.uniform_index(line.size() - 1);
      line.insert(at, rng.uniform() < 0.5 ? " " : "\t");
    }
    expect_parser_agreement(line, parser);
  }
}

// --- template tracker -------------------------------------------------------

TEST(TemplateTracker, NovelFlagFiresOncePerTemplateAndIdsAreStable) {
  TemplateTracker tracker;
  const TemplateTracker::Observation first =
      tracker.observe("widget driver fault on port 3");
  EXPECT_TRUE(first.novel);
  const TemplateTracker::Observation again =
      tracker.observe("widget driver fault on port 5");
  EXPECT_FALSE(again.novel) << "digits premask to one template";
  EXPECT_EQ(again.drain_id, first.drain_id);
  EXPECT_EQ(again.vocab_id, first.vocab_id);
  EXPECT_NE(first.vocab_id, logs::PhraseVocab::kUnknownId);

  const TemplateTracker::Observation other =
      tracker.observe("fan speed nominal on blade");
  EXPECT_TRUE(other.novel);
  EXPECT_NE(other.drain_id, first.drain_id);
  EXPECT_EQ(tracker.novel_count(), 2u);
  EXPECT_EQ(tracker.template_count(), 2u);

  const logs::PhraseVocab vocab = tracker.vocab_snapshot();
  EXPECT_EQ(vocab.decode(first.vocab_id),
            tracker.template_text(first.drain_id));
}

TEST(TemplateTracker, ConcurrentObserversAgreeOnIds) {
  TemplateTracker tracker;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 400;
  std::vector<std::vector<std::uint32_t>> ids(kThreads);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t)
    workers.emplace_back([&tracker, &ids, t] {
      util::Rng rng(100 + t);
      ids[t].reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t family = rng.uniform_index(10);
        const std::string msg = "family " + std::to_string(family) +
                                " event code " +
                                std::to_string(rng.uniform_index(50));
        ids[t].push_back(tracker.observe(msg).drain_id);
      }
    });
  for (std::thread& w : workers) w.join();

  // Every thread that saw family F got the same id for it (ids are stable
  // and premasked digits collapse each family to one template).
  EXPECT_LE(tracker.template_count(), 10u);
  EXPECT_EQ(tracker.novel_count(), tracker.template_count());
  for (std::size_t t = 0; t < kThreads; ++t)
    for (const std::uint32_t id : ids[t])
      EXPECT_LT(id, tracker.template_count());
}

// --- end to end: raw text -> prediction -------------------------------------

class IngestEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    logs::SyntheticCraySource source(logs::profile_tiny(2024));
    logs::SyntheticLog log = source.generate();
    auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
    core::DeshConfig config;
    config.phase1.epochs = 1;
    pipeline_ = new DeshPipeline(config);
    pipeline_->fit(train);
    // What ingest can see of the test stream: the syslog round trip
    // (whole-second timestamps, normalized messages).
    canonical_ = new logs::LogCorpus(logs::canonicalize_syslog(test));
    raw_text_ = new std::string(logs::render_syslog_text(*canonical_));
    ASSERT_FALSE(canonical_->empty());
  }
  static void TearDownTestSuite() {
    delete raw_text_;
    delete canonical_;
    delete pipeline_;
  }

  static std::vector<MonitorAlert> sequential_alerts(std::size_t threads) {
    core::MonitorConfig config;
    config.threads = threads;
    StreamingMonitor monitor(*pipeline_, config);
    std::vector<MonitorAlert> alerts;
    for (const logs::LogRecord& record : *canonical_)
      if (auto alert = monitor.observe(record)) alerts.push_back(*alert);
    return alerts;
  }

  /// Raw bytes through a pump into a manual-pump server, tiny queue so the
  /// kQueueFull retry path actually runs, random chunk sizes so torn lines
  /// actually happen.
  static std::vector<MonitorAlert> ingested_alerts(std::size_t threads,
                                                   IngestStats* stats_out) {
    serve::ServeConfig sconfig;
    sconfig.start_collector = false;
    sconfig.queue_capacity = 64;
    sconfig.monitor.threads = threads;
    auto server = serve::InferenceServer::create(*pipeline_, sconfig);
    EXPECT_TRUE(server.ok());
    auto pump = IngestPump::create(*server.value(), core::IngestConfig{});
    EXPECT_TRUE(pump.ok());

    util::Rng rng(4242);
    std::string_view text(*raw_text_);
    std::size_t at = 0;
    while (at < text.size()) {
      const std::size_t n =
          std::min(text.size() - at, 1 + rng.uniform_index(8191));
      EXPECT_TRUE(pump.value()->feed_bytes(text.substr(at, n)).ok());
      at += n;
    }
    EXPECT_TRUE(pump.value()->finish().ok());
    server.value()->drain();
    std::vector<MonitorAlert> alerts = server.value()->poll_alerts();
    const serve::ServeStats sstats = server.value()->stats();
    EXPECT_EQ(sstats.shed, 0u) << "equivalence requires no sheds";
    EXPECT_EQ(sstats.processed, canonical_->size());
    if (stats_out) *stats_out = pump.value()->stats();
    server.value()->stop();
    return alerts;
  }

  static void expect_same_alerts(const std::vector<MonitorAlert>& a,
                                 const std::vector<MonitorAlert>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node) << i;
      EXPECT_EQ(a[i].time, b[i].time) << i;
      EXPECT_EQ(a[i].predicted_lead_seconds, b[i].predicted_lead_seconds)
          << i;
      EXPECT_EQ(a[i].score, b[i].score) << i;
      EXPECT_EQ(a[i].message, b[i].message) << i;
    }
  }

  static DeshPipeline* pipeline_;
  static logs::LogCorpus* canonical_;
  static std::string* raw_text_;
};

DeshPipeline* IngestEndToEndTest::pipeline_ = nullptr;
logs::LogCorpus* IngestEndToEndTest::canonical_ = nullptr;
std::string* IngestEndToEndTest::raw_text_ = nullptr;

TEST_F(IngestEndToEndTest, RawTextMatchesPreparsedDecisionStream) {
  const std::vector<MonitorAlert> expected = sequential_alerts(1);
  ASSERT_FALSE(expected.empty()) << "fixture stream never alerted";
  IngestStats stats;
  const std::vector<MonitorAlert> got = ingested_alerts(1, &stats);
  expect_same_alerts(expected, got);
  EXPECT_EQ(stats.records, canonical_->size());
  EXPECT_EQ(stats.unparseable_lines, 0u);
  EXPECT_GT(stats.torn_lines, 0u) << "random chunking never tore a line";
  EXPECT_GT(stats.new_templates, 0u);
  EXPECT_GT(stats.admission_retries, 0u)
      << "queue_capacity=64 never backpressured";
}

TEST_F(IngestEndToEndTest, EquivalenceHoldsAtEightMonitorThreads) {
  expect_same_alerts(sequential_alerts(8), ingested_alerts(8, nullptr));
}

TEST_F(IngestEndToEndTest, JunkAndOversizeLinesAreCountedNotFatal) {
  serve::ServeConfig sconfig;
  sconfig.start_collector = false;
  sconfig.monitor.threads = 1;
  auto server = serve::InferenceServer::create(*pipeline_, sconfig);
  ASSERT_TRUE(server.ok());
  core::IngestConfig iconfig;
  iconfig.max_line_bytes = 256;
  auto pump = IngestPump::create(*server.value(), iconfig);
  ASSERT_TRUE(pump.ok());

  std::string text;
  text += "#### console restart marker ####\n";             // unparseable
  text += logs::format_syslog_line((*canonical_)[0]) + "\n";  // good
  text += std::string(1000, 'x') + "\n";                    // oversize
  text += "Mar 99 10:00:00 c0-0c0s0n2 bad day\n";           // unparseable
  text += logs::format_syslog_line((*canonical_)[1]) + "\n";  // good
  ASSERT_TRUE(pump.value()->feed_bytes(text).ok());
  ASSERT_TRUE(pump.value()->finish().ok());
  server.value()->drain();

  const IngestStats stats = pump.value()->stats();
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.unparseable_lines, 2u);
  EXPECT_EQ(stats.oversize_lines, 1u);
  EXPECT_EQ(stats.lines, 4u);  // the oversize line never counts as a line
  EXPECT_EQ(server.value()->stats().processed, 2u);
  server.value()->stop();
}

TEST_F(IngestEndToEndTest, StoppedSinkReportsUnavailable) {
  serve::ServeConfig sconfig;
  sconfig.start_collector = false;
  auto server = serve::InferenceServer::create(*pipeline_, sconfig);
  ASSERT_TRUE(server.ok());
  server.value()->stop();
  auto pump = IngestPump::create(*server.value(), core::IngestConfig{});
  ASSERT_TRUE(pump.ok());
  const std::string line = logs::format_syslog_line((*canonical_)[0]) + "\n";
  const auto r = pump.value()->feed_bytes(line);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, core::ErrorCode::kUnavailable);
}

TEST_F(IngestEndToEndTest, CreateRejectsInvalidConfig) {
  serve::ServeConfig sconfig;
  sconfig.start_collector = false;
  auto server = serve::InferenceServer::create(*pipeline_, sconfig);
  ASSERT_TRUE(server.ok());
  core::IngestConfig bad;
  bad.chunk_bytes = 0;
  const auto pump = IngestPump::create(*server.value(), bad);
  ASSERT_FALSE(pump.ok());
  EXPECT_EQ(pump.error().code, core::ErrorCode::kInvalidConfig);
  EXPECT_NE(pump.error().message.find("ingest.chunk_bytes"),
            std::string::npos);
  server.value()->stop();
}

TEST_F(IngestEndToEndTest, NovelRawTemplateReachesAdaptDriftDetector) {
  namespace fs = std::filesystem;
  const std::string root = ::testing::TempDir() + "/ingest_drift_registry";
  fs::remove_all(root);

  // The drifted stream: after every other canonical record, a clone
  // carrying a novel fault family the champion never trained on (same
  // recipe as test_adapt_controller's fixture, but arriving as RAW TEXT).
  logs::LogCorpus drifted;
  std::size_t i = 0;
  for (const logs::LogRecord& record : *canonical_) {
    drifted.push_back(record);
    if (++i % 2 == 0) {
      logs::LogRecord novel = record;
      novel.message = "widget driver fault on port " + std::to_string(i % 7);
      drifted.push_back(std::move(novel));
    }
  }

  serve::ServeConfig sconfig;
  sconfig.start_collector = false;
  sconfig.monitor.threads = 1;
  auto server = serve::InferenceServer::create(*pipeline_, sconfig);
  ASSERT_TRUE(server.ok());

  adapt::AdaptOptions options;
  options.registry_root = root;
  options.trainer.phase1.epochs = 1;
  options.trainer.threads = 1;
  options.config.background = false;
  options.config.oov_window = 64;
  options.config.novelty_window = 64;
  options.config.min_window_fill = 16;
  options.config.hysteresis = 2;
  options.config.oov_trigger = 0.2;
  options.config.oov_clear = 0.05;
  // Single-swap recipe (mirrors test_adapt_controller's fixture): the
  // drift edge is only consumed — and drift_triggers only counted — once
  // the replay window clears the depth floor, so the floor must be
  // reachable. The cooldown caps the test at one inline retrain.
  options.config.replay_capacity = 1u << 16;
  options.config.min_replay_records = 512;
  options.config.retrain_cooldown_records = 1u << 20;
  options.config.probation_records = 64;
  options.config.regression_margin = 0.10;
  // Non-owning aliasing pointer: the fixture pipeline outlives the
  // controller, and DeshPipeline is not copyable.
  const std::shared_ptr<const DeshPipeline> champion(
      std::shared_ptr<const DeshPipeline>{}, pipeline_);
  auto controller = adapt::AdaptController::create(champion, options);
  ASSERT_TRUE(controller.ok());
  controller.value()->attach(*server.value());

  auto pump = IngestPump::create(*server.value(), core::IngestConfig{});
  ASSERT_TRUE(pump.ok());
  const std::string raw = logs::render_syslog_text(drifted);
  ASSERT_TRUE(pump.value()->feed_bytes(raw).ok());
  ASSERT_TRUE(pump.value()->finish().ok());
  server.value()->drain();
  controller.value()->wait_idle();

  // The ingest frontend saw the novel family...
  EXPECT_GT(pump.value()->tracker().novel_count(), 0u);
  // ...and the drift detector fired on raw text alone.
  EXPECT_GE(controller.value()->stats().drift_triggers, 1u);
  server.value()->stop();
  fs::remove_all(root);
}

}  // namespace
}  // namespace desh::ingest
