#include "core/insights.hpp"

#include <gtest/gtest.h>

namespace desh::core {
namespace {

// Crafted corpus: phrase 1 is everywhere, phrase 2 appears mostly inside
// failure chains, phrase 3 never appears in chains.
struct Fixture {
  chains::ParsedLog corpus;
  std::vector<chains::CandidateSequence> candidates;
  logs::PhraseVocab vocab;

  Fixture() {
    vocab.add("common chatter");       // id 1
    vocab.add("failure-bound error");  // id 2
    vocab.add("harmless warning");     // id 3

    std::vector<chains::ParsedEvent> events;
    for (int i = 0; i < 100; ++i) events.push_back({i * 10.0, 1u});
    for (int i = 0; i < 10; ++i) events.push_back({2000.0 + i, 2u});
    for (int i = 0; i < 10; ++i) events.push_back({3000.0 + i, 3u});
    corpus.by_node[logs::NodeId{0, 0, 0, 0, 0}] = events;
    corpus.event_count = events.size();

    chains::CandidateSequence chain;
    chain.node = logs::NodeId{0, 0, 0, 0, 0};
    chain.ends_with_terminal = true;
    for (int i = 0; i < 8; ++i) chain.events.push_back({2000.0 + i, 2u});
    chain.events.push_back({2010.0, 1u});
    candidates.push_back(chain);

    chains::CandidateSequence lookalike;  // non-failure: must not count
    lookalike.node = chain.node;
    lookalike.ends_with_terminal = false;
    for (int i = 0; i < 8; ++i) lookalike.events.push_back({3000.0 + i, 3u});
    candidates.push_back(lookalike);
  }
};

TEST(FailureIndicators, RanksChainBoundPhrasesFirst) {
  Fixture f;
  const auto insights = failure_indicators(f.corpus, f.candidates, f.vocab);
  ASSERT_EQ(insights.size(), 2u);  // phrases 2 and 1 appear in chains
  EXPECT_EQ(insights[0].phrase, 2u);
  EXPECT_EQ(insights[0].tmpl, "failure-bound error");
  EXPECT_GT(insights[0].lift, insights[1].lift);
  // The ubiquitous phrase has lift ~<= 1: not a failure indicator.
  EXPECT_LT(insights[1].lift, 1.5);
  // Phrase 3 only appears in a non-failure candidate: absent entirely.
  for (const PhraseInsight& i : insights) EXPECT_NE(i.phrase, 3u);
}

TEST(FailureIndicators, CountsAreExact) {
  Fixture f;
  const auto insights = failure_indicators(f.corpus, f.candidates, f.vocab);
  const PhraseInsight& top = insights[0];
  EXPECT_EQ(top.chain_count, 8u);
  EXPECT_EQ(top.corpus_count, 10u);
}

TEST(FailureIndicators, EmptyInputsYieldEmptyRanking) {
  Fixture f;
  EXPECT_TRUE(failure_indicators(f.corpus, {}, f.vocab).empty());
  chains::ParsedLog empty;
  EXPECT_TRUE(failure_indicators(empty, f.candidates, f.vocab).empty());
}

}  // namespace
}  // namespace desh::core
