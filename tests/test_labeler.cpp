#include "chains/labeler.hpp"

#include <gtest/gtest.h>

namespace desh::chains {
namespace {

using logs::PhraseLabel;

TEST(PhraseLabeler, MirrorsCatalogLabels) {
  // Table 3 exemplars.
  EXPECT_EQ(PhraseLabeler::label_template("Wait4Boot"), PhraseLabel::kSafe);
  EXPECT_EQ(PhraseLabeler::label_template("Mounting NID specific"),
            PhraseLabel::kSafe);
  EXPECT_EQ(PhraseLabeler::label_template("LustreError *"),
            PhraseLabel::kUnknown);
  EXPECT_EQ(PhraseLabeler::label_template("PCIe Bus Error: severity=Corrected *"),
            PhraseLabel::kUnknown);
  EXPECT_EQ(PhraseLabeler::label_template("Kernel panic - not syncing *"),
            PhraseLabel::kError);
  EXPECT_EQ(PhraseLabeler::label_template("Debug NMI detected"),
            PhraseLabel::kError);
  EXPECT_EQ(PhraseLabeler::label_template("cb_node_unavailable"),
            PhraseLabel::kError);
}

TEST(PhraseLabeler, KeywordFallbackForUncataloguedTemplates) {
  EXPECT_EQ(PhraseLabeler::label_template("service xyz panic detected"),
            PhraseLabel::kError);
  EXPECT_EQ(PhraseLabeler::label_template("widget error code returned"),
            PhraseLabel::kUnknown);
  EXPECT_EQ(PhraseLabeler::label_template("widget checkpoint written"),
            PhraseLabel::kSafe);
  EXPECT_EQ(PhraseLabeler::label_template("daemon watchdog timeout on link"),
            PhraseLabel::kUnknown);
}

TEST(PhraseLabeler, TerminalDetection) {
  EXPECT_TRUE(PhraseLabeler::is_terminal_template("cb_node_unavailable"));
  EXPECT_TRUE(PhraseLabeler::is_terminal_template("WARNING: Node * is down"));
  EXPECT_TRUE(PhraseLabeler::is_terminal_template("Stop NMI detected"));
  EXPECT_FALSE(PhraseLabeler::is_terminal_template("Debug NMI detected"));
  EXPECT_FALSE(PhraseLabeler::is_terminal_template("LustreError *"));
  EXPECT_FALSE(PhraseLabeler::is_terminal_template("uncatalogued message"));
}

TEST(PhraseLabeler, SnapshotCoversVocabAndDefaultsUnknown) {
  logs::PhraseVocab vocab;
  const auto safe_id = vocab.add("Wait4Boot");
  const auto err_id = vocab.add("Call Trace:");
  PhraseLabeler labeler(vocab);
  EXPECT_EQ(labeler.vocab_size(), vocab.size());
  EXPECT_EQ(labeler.label(safe_id), PhraseLabel::kSafe);
  EXPECT_EQ(labeler.label(err_id), PhraseLabel::kError);
  // The <unk> sentinel is Unknown by definition.
  EXPECT_EQ(labeler.label(logs::PhraseVocab::kUnknownId),
            PhraseLabel::kUnknown);
  // Ids added after the snapshot default to Unknown and non-terminal.
  const auto later = vocab.add("added later");
  EXPECT_EQ(labeler.label(later), PhraseLabel::kUnknown);
  EXPECT_FALSE(labeler.is_terminal(later));
}

}  // namespace
}  // namespace desh::chains
