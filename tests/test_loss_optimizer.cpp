#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/error.hpp"

namespace desh::nn {
namespace {

TEST(SoftmaxCrossEntropy, MatchesManualComputation) {
  tensor::Matrix logits(2, 3,
                        std::vector<float>{1.0f, 2.0f, 3.0f, 0.0f, 0.0f, 0.0f});
  const std::uint32_t targets[] = {2, 0};
  const float loss = SoftmaxCrossEntropy::forward(logits, targets);
  // Row 0: -log(softmax_2), row 1: -log(1/3).
  const float e1 = std::exp(1.0f), e2 = std::exp(2.0f), e3 = std::exp(3.0f);
  const float expected =
      0.5f * (-std::log(e3 / (e1 + e2 + e3)) + std::log(3.0f));
  EXPECT_NEAR(loss, expected, 1e-5f);
}

TEST(SoftmaxCrossEntropy, ForwardBackwardConsistentWithForward) {
  tensor::Matrix logits(2, 4);
  logits(0, 1) = 2.0f;
  logits(1, 3) = -1.0f;
  const std::uint32_t targets[] = {1, 0};
  tensor::Matrix dlogits;
  const float fb = SoftmaxCrossEntropy::forward_backward(logits, targets, dlogits);
  EXPECT_NEAR(fb, SoftmaxCrossEntropy::forward(logits, targets), 1e-6f);
  // Gradient rows sum to zero (softmax minus one-hot, scaled).
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0;
    for (std::size_t c = 0; c < 4; ++c) sum += dlogits(r, c);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesNumeric) {
  tensor::Matrix logits(3, 5);
  for (std::size_t i = 0; i < logits.size(); ++i)
    logits.data()[i] = 0.3f * static_cast<float>(i % 7) - 1.0f;
  const std::uint32_t targets[] = {0, 4, 2};
  tensor::Matrix dlogits;
  SoftmaxCrossEntropy::forward_backward(logits, targets, dlogits);
  auto loss_fn = [&] {
    return static_cast<double>(SoftmaxCrossEntropy::forward(logits, targets));
  };
  testutil::expect_matches_numeric_gradient(logits, dlogits, loss_fn, 1e-3,
                                            1e-3);
}

TEST(SoftmaxCrossEntropy, Validation) {
  tensor::Matrix logits(2, 3);
  const std::uint32_t wrong_count[] = {0};
  EXPECT_THROW(SoftmaxCrossEntropy::forward(logits, wrong_count),
               util::InvalidArgument);
  const std::uint32_t out_of_range[] = {0, 3};
  EXPECT_THROW(SoftmaxCrossEntropy::forward(logits, out_of_range),
               util::InvalidArgument);
}

TEST(MeanSquaredError, ValueAndGradient) {
  tensor::Matrix pred(1, 2, std::vector<float>{3.0f, 1.0f});
  tensor::Matrix target(1, 2, std::vector<float>{1.0f, 1.0f});
  tensor::Matrix dpred;
  const float loss = MeanSquaredError::forward_backward(pred, target, dpred);
  EXPECT_NEAR(loss, 2.0f, 1e-6f);  // ((3-1)^2 + 0)/2
  EXPECT_NEAR(dpred(0, 0), 2.0f, 1e-6f);  // 2*(3-1)/2
  EXPECT_NEAR(dpred(0, 1), 0.0f, 1e-6f);
  EXPECT_THROW(MeanSquaredError::forward(pred, tensor::Matrix(2, 2)),
               util::InvalidArgument);
}

Parameter make_param(std::vector<float> value, std::vector<float> grad) {
  const std::size_t value_size = value.size();
  const std::size_t grad_size = grad.size();
  Parameter p("p", tensor::Matrix(1, value_size, std::move(value)));
  p.grad = tensor::Matrix(1, grad_size, std::move(grad));
  return p;
}

TEST(Sgd, PlainStepSubtractsScaledGradient) {
  Parameter p = make_param({1.0f, 2.0f}, {0.5f, -1.0f});
  Sgd opt(0.1f);
  opt.step({&p});
  EXPECT_NEAR(p.value(0, 0), 0.95f, 1e-6f);
  EXPECT_NEAR(p.value(0, 1), 2.1f, 1e-6f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Parameter p = make_param({0.0f}, {1.0f});
  Sgd opt(0.1f, 0.9f);
  opt.step({&p});
  EXPECT_NEAR(p.value(0, 0), -0.1f, 1e-6f);
  // Same gradient again: velocity = 0.9*(-0.1) - 0.1 = -0.19.
  opt.step({&p});
  EXPECT_NEAR(p.value(0, 0), -0.29f, 1e-6f);
}

TEST(Sgd, ValidatesHyperparameters) {
  EXPECT_THROW(Sgd(0.0f), util::InvalidArgument);
  EXPECT_THROW(Sgd(0.1f, 1.0f), util::InvalidArgument);
}

TEST(RmsProp, FirstStepIsScaledSign) {
  Parameter p = make_param({0.0f}, {2.0f});
  RmsProp opt(0.01f, 0.9f, 1e-8f);
  opt.step({&p});
  // ms = 0.1*g^2 -> update ~ lr * g / (sqrt(0.1)*|g|) = lr/sqrt(0.1).
  EXPECT_NEAR(p.value(0, 0), -0.01f / std::sqrt(0.1f), 1e-4f);
}

TEST(RmsProp, AdaptsToGradientScale) {
  // Two parameters with very different gradient magnitudes receive similar
  // effective step sizes — the defining property of RMSprop.
  Parameter small = make_param({0.0f}, {0.01f});
  Parameter large = make_param({0.0f}, {100.0f});
  RmsProp opt(0.01f);
  for (int i = 0; i < 50; ++i) {
    small.grad(0, 0) = 0.01f;
    large.grad(0, 0) = 100.0f;
    opt.step({&small, &large});
  }
  EXPECT_NEAR(small.value(0, 0) / large.value(0, 0), 1.0, 0.05);
}

TEST(RmsProp, ValidatesHyperparameters) {
  EXPECT_THROW(RmsProp(0.0f), util::InvalidArgument);
  EXPECT_THROW(RmsProp(0.1f, 1.5f), util::InvalidArgument);
  EXPECT_THROW(RmsProp(0.1f, 0.9f, 0.0f), util::InvalidArgument);
}

TEST(ClipGlobalNorm, RescalesOnlyWhenAboveLimit) {
  Parameter a = make_param({0.0f, 0.0f}, {3.0f, 0.0f});
  Parameter b = make_param({0.0f}, {4.0f});
  // Global norm is 5; clip to 2.5 -> all gradients halve.
  const float norm = clip_global_norm({&a, &b}, 2.5f);
  EXPECT_NEAR(norm, 5.0f, 1e-5f);
  EXPECT_NEAR(a.grad(0, 0), 1.5f, 1e-5f);
  EXPECT_NEAR(b.grad(0, 0), 2.0f, 1e-5f);
  // Below the limit: untouched.
  const float norm2 = clip_global_norm({&a, &b}, 100.0f);
  EXPECT_NEAR(norm2, 2.5f, 1e-5f);
  EXPECT_NEAR(a.grad(0, 0), 1.5f, 1e-5f);
}

TEST(Parameter, ZeroGradsClearsAll) {
  Parameter a = make_param({1.0f}, {5.0f});
  Parameter b = make_param({1.0f, 2.0f}, {5.0f, 6.0f});
  zero_grads({&a, &b});
  EXPECT_EQ(a.grad(0, 0), 0.0f);
  EXPECT_EQ(b.grad(0, 1), 0.0f);
  EXPECT_EQ(parameter_count({&a, &b}), 3u);
}

}  // namespace
}  // namespace desh::nn
