#include "nn/lstm.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "gradcheck.hpp"
#include "nn/loss.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace desh::nn {
namespace {

std::vector<tensor::Matrix> random_sequence(std::size_t T, std::size_t B,
                                            std::size_t I, util::Rng& rng) {
  std::vector<tensor::Matrix> seq(T);
  for (auto& m : seq) {
    m.resize(B, I);
    for (float& x : m.flat()) x = static_cast<float>(rng.uniform(-1, 1));
  }
  return seq;
}

TEST(LstmLayer, ForwardShapesAndBoundedOutputs) {
  util::Rng rng(1);
  LstmLayer layer(3, 5, rng);
  auto inputs = random_sequence(4, 2, 3, rng);
  LstmLayer::Cache cache;
  std::vector<tensor::Matrix> outputs;
  layer.forward(inputs, cache, outputs);
  ASSERT_EQ(outputs.size(), 4u);
  for (const auto& h : outputs) {
    EXPECT_EQ(h.rows(), 2u);
    EXPECT_EQ(h.cols(), 5u);
    for (float x : h.flat()) EXPECT_LE(std::abs(x), 1.0f);  // |o*tanh(c)| <= 1
  }
}

TEST(LstmLayer, StepInferenceMatchesSequenceForward) {
  util::Rng rng(2);
  LstmLayer layer(3, 4, rng);
  auto inputs = random_sequence(5, 1, 3, rng);
  LstmLayer::Cache cache;
  std::vector<tensor::Matrix> outputs;
  layer.forward(inputs, cache, outputs);

  tensor::Matrix h(1, 4), c(1, 4);
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    layer.step_inference(inputs[t], h, c);
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(h(0, j), outputs[t](0, j), 1e-5f) << "t=" << t;
  }
}

TEST(LstmLayer, RejectsEmptyAndRaggedSequences) {
  util::Rng rng(3);
  LstmLayer layer(3, 4, rng);
  LstmLayer::Cache cache;
  std::vector<tensor::Matrix> outputs;
  std::vector<tensor::Matrix> empty;
  EXPECT_THROW(layer.forward(empty, cache, outputs), util::InvalidArgument);
  std::vector<tensor::Matrix> ragged = {tensor::Matrix(2, 3),
                                        tensor::Matrix(2, 4)};
  EXPECT_THROW(layer.forward(ragged, cache, outputs), util::InvalidArgument);
}

// Gradcheck sweep over (T, B, I, H) shapes: all weight gradients and input
// gradients must match finite differences of a sum-of-MSE loss on outputs.
class LstmGradcheck
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(LstmGradcheck, BackwardMatchesNumericGradients) {
  const auto [T, B, I, H] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(T * 1000 + B * 100 + I * 10 + H));
  LstmLayer layer(I, H, rng);
  auto inputs =
      random_sequence(static_cast<std::size_t>(T), static_cast<std::size_t>(B),
                      static_cast<std::size_t>(I), rng);
  std::vector<tensor::Matrix> targets =
      random_sequence(static_cast<std::size_t>(T), static_cast<std::size_t>(B),
                      static_cast<std::size_t>(H), rng);

  auto loss_fn = [&] {
    LstmLayer::Cache cache;
    std::vector<tensor::Matrix> outputs;
    layer.forward(inputs, cache, outputs);
    double loss = 0;
    for (std::size_t t = 0; t < outputs.size(); ++t)
      loss += MeanSquaredError::forward(outputs[t], targets[t]);
    return loss;
  };

  LstmLayer::Cache cache;
  std::vector<tensor::Matrix> outputs, douts(static_cast<std::size_t>(T)),
      dinputs;
  layer.forward(inputs, cache, outputs);
  for (std::size_t t = 0; t < outputs.size(); ++t)
    MeanSquaredError::forward_backward(outputs[t], targets[t], douts[t]);
  zero_grads(layer.parameters());
  layer.backward(cache, douts, dinputs);

  for (Parameter* p : layer.parameters())
    testutil::expect_matches_numeric_gradient(p->value, p->grad, loss_fn);
  for (std::size_t t = 0; t < inputs.size(); ++t)
    testutil::expect_matches_numeric_gradient(inputs[t], dinputs[t], loss_fn);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LstmGradcheck,
    ::testing::Values(std::make_tuple(1, 1, 2, 3), std::make_tuple(3, 2, 2, 4),
                      std::make_tuple(5, 1, 3, 2),
                      std::make_tuple(2, 3, 4, 5)));

TEST(LstmStack, ForwardUsesAllLayers) {
  util::Rng rng(4);
  LstmStack stack(3, 4, 2, rng);
  EXPECT_EQ(stack.num_layers(), 2u);
  auto inputs = random_sequence(3, 2, 3, rng);
  LstmStack::Cache cache;
  std::vector<tensor::Matrix> outputs;
  stack.forward(inputs, cache, outputs);
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_EQ(outputs[0].cols(), 4u);
  ASSERT_EQ(cache.layers.size(), 2u);
  // Layer 1's inputs are layer 0's hidden states, not the raw inputs.
  EXPECT_EQ(cache.layers[1].inputs[0].cols(), 4u);
}

TEST(LstmStack, StepInferenceMatchesForward) {
  util::Rng rng(5);
  LstmStack stack(2, 3, 2, rng);
  auto inputs = random_sequence(4, 1, 2, rng);
  LstmStack::Cache cache;
  std::vector<tensor::Matrix> outputs;
  stack.forward(inputs, cache, outputs);

  std::vector<tensor::Matrix> hs, cs;
  stack.make_state(hs, cs, 1);
  tensor::Matrix top;
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    stack.step_inference(inputs[t], hs, cs, top);
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(top(0, j), outputs[t](0, j), 1e-5f);
  }
}

TEST(LstmStack, GradcheckTwoLayers) {
  util::Rng rng(6);
  LstmStack stack(2, 3, 2, rng);
  auto inputs = random_sequence(3, 2, 2, rng);
  auto targets = random_sequence(3, 2, 3, rng);

  auto loss_fn = [&] {
    LstmStack::Cache cache;
    std::vector<tensor::Matrix> outputs;
    stack.forward(inputs, cache, outputs);
    double loss = 0;
    for (std::size_t t = 0; t < outputs.size(); ++t)
      loss += MeanSquaredError::forward(outputs[t], targets[t]);
    return loss;
  };

  LstmStack::Cache cache;
  std::vector<tensor::Matrix> outputs, douts(3), dinputs;
  stack.forward(inputs, cache, outputs);
  for (std::size_t t = 0; t < 3; ++t)
    MeanSquaredError::forward_backward(outputs[t], targets[t], douts[t]);
  zero_grads(stack.parameters());
  stack.backward(cache, douts, dinputs);

  for (Parameter* p : stack.parameters())
    testutil::expect_matches_numeric_gradient(p->value, p->grad, loss_fn);
  for (std::size_t t = 0; t < inputs.size(); ++t)
    testutil::expect_matches_numeric_gradient(inputs[t], dinputs[t], loss_fn);
}

TEST(LstmStack, RequiresAtLeastOneLayer) {
  util::Rng rng(7);
  EXPECT_THROW(LstmStack(2, 3, 0, rng), util::InvalidArgument);
}

}  // namespace
}  // namespace desh::nn
