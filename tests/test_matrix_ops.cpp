#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace desh::tensor {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (float& x : m.flat()) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return m;
}

// Naive reference GEMM.
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0;
      for (std::size_t l = 0; l < a.cols(); ++l) acc += a(i, l) * b(l, j);
      out(i, j) = acc;
    }
  return out;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_EQ(m(1, 2), 1.5f);
  m(0, 1) = -4.0f;
  EXPECT_EQ(m.at(0, 1), -4.0f);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), util::InvalidArgument);
  EXPECT_THROW(m.at(0, 2), util::InvalidArgument);
}

TEST(Matrix, DataVectorCtorValidatesSize) {
  EXPECT_THROW(Matrix(2, 2, std::vector<float>{1, 2, 3}),
               util::InvalidArgument);
  Matrix m(1, 3, std::vector<float>{1, 2, 3});
  EXPECT_EQ(m(0, 2), 3.0f);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a(1, 3, std::vector<float>{1, 2, 3});
  Matrix b(1, 3, std::vector<float>{10, 20, 30});
  a += b;
  EXPECT_EQ(a(0, 1), 22.0f);
  a -= b;
  EXPECT_EQ(a(0, 1), 2.0f);
  a *= 3.0f;
  EXPECT_EQ(a(0, 2), 9.0f);
  Matrix wrong(2, 2);
  EXPECT_THROW(a += wrong, util::InvalidArgument);
}

TEST(Matrix, XavierStaysWithinLimit) {
  util::Rng rng(1);
  Matrix m = Matrix::xavier(10, 30, rng);
  const float limit = std::sqrt(6.0f / 40.0f);
  for (float x : m.flat()) {
    EXPECT_LE(std::abs(x), limit);
  }
  // Non-degenerate: not all values identical.
  EXPECT_NE(m(0, 0), m(5, 7));
}

TEST(Matrix, RowSpanViewsStorage) {
  Matrix m(2, 3, std::vector<float>{1, 2, 3, 4, 5, 6});
  auto row = m.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 4.0f);
  row[0] = 42.0f;
  EXPECT_EQ(m(1, 0), 42.0f);
  EXPECT_THROW(m.row(2), util::InvalidArgument);
}

// Property sweep: matmul variants agree with the naive reference over shapes.
class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapes, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(m * 73 + k * 7 + n));
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix expected = naive_matmul(a, b);

  Matrix out;
  matmul(a, b, out);
  ASSERT_EQ(out.rows(), static_cast<std::size_t>(m));
  ASSERT_EQ(out.cols(), static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out.data()[i], expected.data()[i], 1e-4f);

  // A^T B via explicitly transposed input.
  Matrix at(k, m);
  for (int i = 0; i < m; ++i)
    for (int l = 0; l < k; ++l) at(l, i) = a(i, l);
  Matrix out2;
  matmul_at_b(at, b, out2);
  for (std::size_t i = 0; i < out2.size(); ++i)
    EXPECT_NEAR(out2.data()[i], expected.data()[i], 1e-4f);

  // A B^T via explicitly transposed input.
  Matrix bt(n, k);
  for (int l = 0; l < k; ++l)
    for (int j = 0; j < n; ++j) bt(j, l) = b(l, j);
  Matrix out3;
  matmul_a_bt(a, bt, out3);
  for (std::size_t i = 0; i < out3.size(); ++i)
    EXPECT_NEAR(out3.data()[i], expected.data()[i], 1e-4f);

  // Accumulating variant adds on top.
  Matrix acc = expected;
  matmul_acc(a, b, acc);
  for (std::size_t i = 0; i < acc.size(); ++i)
    EXPECT_NEAR(acc.data()[i], 2.0f * expected.data()[i], 2e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(1, 33, 9), std::make_tuple(40, 17, 1)));

TEST(Ops, MatmulShapeValidation) {
  Matrix a(2, 3), b(4, 2), out;
  EXPECT_THROW(matmul(a, b, out), util::InvalidArgument);
  Matrix acc_out(3, 2);
  EXPECT_THROW(matmul_acc(a, Matrix(3, 2), acc_out), util::InvalidArgument);
}

TEST(Ops, AxpyAccumulates) {
  Matrix x(1, 3, std::vector<float>{1, 2, 3});
  Matrix y(1, 3, std::vector<float>{10, 10, 10});
  axpy(2.0f, x, y);
  EXPECT_EQ(y(0, 0), 12.0f);
  EXPECT_EQ(y(0, 2), 16.0f);
}

TEST(Ops, AddRowBias) {
  Matrix m(2, 2, std::vector<float>{1, 2, 3, 4});
  Matrix bias(1, 2, std::vector<float>{10, 20});
  add_row_bias(m, bias);
  EXPECT_EQ(m(0, 0), 11.0f);
  EXPECT_EQ(m(1, 1), 24.0f);
  Matrix bad(2, 2);
  EXPECT_THROW(add_row_bias(m, bad), util::InvalidArgument);
}

TEST(Ops, SigmoidAndTanh) {
  Matrix in(1, 3, std::vector<float>{0.0f, 100.0f, -100.0f});
  Matrix out;
  sigmoid(in, out);
  EXPECT_NEAR(out(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(out(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(out(0, 2), 0.0f, 1e-6f);
  tanh_act(in, out);
  EXPECT_NEAR(out(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(out(0, 1), 1.0f, 1e-6f);
  EXPECT_EQ(sigmoid_grad_from_value(0.5f), 0.25f);
  EXPECT_EQ(tanh_grad_from_value(0.0f), 1.0f);
}

class SoftmaxWidths : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxWidths, RowsSumToOneAndOrderPreserved) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Matrix in = random_matrix(3, GetParam(), rng);
  Matrix out;
  softmax_rows(in, out);
  for (std::size_t r = 0; r < in.rows(); ++r) {
    float sum = 0;
    for (std::size_t c = 0; c < in.cols(); ++c) {
      EXPECT_GT(out(r, c), 0.0f);
      sum += out(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    EXPECT_EQ(argmax(in.row(r)), argmax(out.row(r)));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SoftmaxWidths,
                         ::testing::Values(1, 2, 5, 37, 128));

TEST(Ops, SoftmaxIsShiftInvariantAndStable) {
  Matrix a(1, 3, std::vector<float>{1000.0f, 1001.0f, 1002.0f});
  Matrix out;
  softmax_rows(a, out);
  float sum = 0;
  for (std::size_t c = 0; c < 3; ++c) sum += out(0, c);
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  EXPECT_GT(out(0, 2), out(0, 1));
}

TEST(Ops, LogSumExp) {
  const std::vector<float> row = {std::log(1.0f), std::log(2.0f),
                                  std::log(3.0f)};
  EXPECT_NEAR(logsumexp(row), std::log(6.0f), 1e-5f);
  const std::vector<float> big = {1000.0f, 1000.0f};
  EXPECT_NEAR(logsumexp(big), 1000.0f + std::log(2.0f), 1e-3f);
}

TEST(Ops, ArgmaxAndTopk) {
  const std::vector<float> row = {0.1f, 0.9f, 0.5f, 0.7f};
  EXPECT_EQ(argmax(row), 1u);
  const auto top = topk(row, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
  EXPECT_THROW(topk(row, 0), util::InvalidArgument);
  EXPECT_THROW(topk(row, 5), util::InvalidArgument);
}

TEST(Ops, ClipAndNorm) {
  Matrix m(1, 4, std::vector<float>{-10, -1, 1, 10});
  clip_inplace(m, 2.0f);
  EXPECT_EQ(m(0, 0), -2.0f);
  EXPECT_EQ(m(0, 3), 2.0f);
  Matrix v(1, 2, std::vector<float>{3, 4});
  EXPECT_NEAR(l2_norm(v), 5.0f, 1e-6f);
}

TEST(Ops, Dot) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {4, 5, 6};
  EXPECT_EQ(dot(std::span<const float>(a), std::span<const float>(b)), 32.0f);
}

}  // namespace
}  // namespace desh::tensor
