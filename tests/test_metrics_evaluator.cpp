#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/metrics.hpp"
#include "util/error.hpp"

namespace desh::core {
namespace {

TEST(Metrics, Table6FormulasOnKnownCounts) {
  // TP=40, FP=2, FN=7, TN=6 — the M1-style working example from DESIGN.md.
  const ConfusionCounts c{40, 2, 7, 6};
  const Metrics m = Metrics::from_counts(c);
  EXPECT_NEAR(m.recall, 40.0 / 47.0, 1e-12);
  EXPECT_NEAR(m.precision, 40.0 / 42.0, 1e-12);
  EXPECT_NEAR(m.accuracy, 46.0 / 55.0, 1e-12);
  EXPECT_NEAR(m.f1, 2 * m.recall * m.precision / (m.recall + m.precision),
              1e-12);
  EXPECT_NEAR(m.fp_rate, 2.0 / 8.0, 1e-12);
  EXPECT_NEAR(m.fn_rate, 1.0 - m.recall, 1e-12);
}

TEST(Metrics, EmptyDenominatorsYieldZero) {
  const Metrics m = Metrics::from_counts(ConfusionCounts{});
  EXPECT_EQ(m.recall, 0.0);
  EXPECT_EQ(m.precision, 0.0);
  EXPECT_EQ(m.accuracy, 0.0);
  EXPECT_EQ(m.f1, 0.0);
  EXPECT_EQ(m.fp_rate, 0.0);
  EXPECT_EQ(m.fn_rate, 0.0);
}

TEST(Metrics, PerfectAndWorstCases) {
  const Metrics perfect = Metrics::from_counts(ConfusionCounts{10, 0, 0, 10});
  EXPECT_EQ(perfect.recall, 1.0);
  EXPECT_EQ(perfect.precision, 1.0);
  EXPECT_EQ(perfect.f1, 1.0);
  EXPECT_EQ(perfect.fp_rate, 0.0);
  const Metrics worst = Metrics::from_counts(ConfusionCounts{0, 10, 10, 0});
  EXPECT_EQ(worst.recall, 0.0);
  EXPECT_EQ(worst.accuracy, 0.0);
  EXPECT_EQ(worst.fp_rate, 1.0);
}

// --- Evaluator with crafted candidates/predictions/truth -----------------

chains::CandidateSequence make_candidate(logs::NodeId node, double end_time,
                                         bool terminal) {
  chains::CandidateSequence c;
  c.node = node;
  for (int i = 5; i >= 0; --i)
    c.events.push_back(chains::ParsedEvent{end_time - i * 10.0, 1u});
  c.ends_with_terminal = terminal;
  return c;
}

FailurePrediction make_prediction(logs::NodeId node, bool flagged,
                                  double lead) {
  FailurePrediction p;
  p.node = node;
  p.flagged = flagged;
  p.lead_seconds = lead;
  p.predicted_lead_seconds = lead * 1.1;
  return p;
}

TEST(Evaluator, CountsAllFourOutcomes) {
  const logs::NodeId n1{0, 0, 0, 0, 0}, n2{0, 0, 0, 0, 1}, n3{0, 0, 0, 0, 2},
      n4{0, 0, 0, 0, 3}, n5{0, 0, 0, 1, 0};
  logs::GroundTruth truth;
  truth.split_time = 1000.0;
  truth.duration_seconds = 10000.0;
  // Three test failures: one flagged (TP), one unflagged (FN), one whose
  // chain never surfaced (FN via unmatched truth).
  truth.failures.push_back(
      {n1, 2000.0, 1900.0, logs::FailureClass::kMce, false, 0});
  truth.failures.push_back(
      {n2, 3000.0, 2900.0, logs::FailureClass::kPanic, false, 0});
  truth.failures.push_back(
      {n5, 4000.0, 3900.0, logs::FailureClass::kJob, true, 0});
  // One training-window failure: ignored entirely.
  truth.failures.push_back(
      {n3, 500.0, 400.0, logs::FailureClass::kMce, false, 0});

  std::vector<chains::CandidateSequence> candidates = {
      make_candidate(n1, 2000.0, true),   // matches failure 1
      make_candidate(n2, 3000.0, true),   // matches failure 2
      make_candidate(n3, 5000.0, false),  // lookalike, flagged -> FP
      make_candidate(n4, 6000.0, false),  // lookalike, unflagged -> TN
      make_candidate(n4, 800.0, false),   // training window, ignored
  };
  std::vector<FailurePrediction> predictions = {
      make_prediction(n1, true, 120.0), make_prediction(n2, false, 0.0),
      make_prediction(n3, true, 60.0),  make_prediction(n4, false, 0.0),
      make_prediction(n4, true, 10.0),
  };

  const SystemEvaluation eval =
      Evaluator::evaluate(candidates, predictions, truth);
  EXPECT_EQ(eval.counts.tp, 1u);
  EXPECT_EQ(eval.counts.fn, 2u);  // unflagged match + never-extracted novel
  EXPECT_EQ(eval.counts.fp, 1u);
  EXPECT_EQ(eval.counts.tn, 1u);
  EXPECT_EQ(eval.test_failures, 3u);
  EXPECT_EQ(eval.novel_failures, 1u);
  // Lead time of the single TP, classed as MCE.
  EXPECT_EQ(eval.lead_times.count(), 1u);
  EXPECT_DOUBLE_EQ(eval.lead_times.mean(), 120.0);
  EXPECT_EQ(
      eval.lead_by_class[static_cast<std::size_t>(logs::FailureClass::kMce)]
          .count(),
      1u);
  EXPECT_EQ(
      eval.lead_by_class[static_cast<std::size_t>(logs::FailureClass::kPanic)]
          .count(),
      0u);
  EXPECT_DOUBLE_EQ(eval.predicted_lead_times.mean(), 132.0);
}

TEST(Evaluator, MatchingRespectsTimeTolerance) {
  const logs::NodeId n{0, 0, 0, 0, 0};
  logs::GroundTruth truth;
  truth.split_time = 0.0;
  truth.failures.push_back({n, 1000.0, 900.0, logs::FailureClass::kMce, false, 0});
  // Candidate ends 30 s away from the terminal: no match -> candidate is FP,
  // the failure itself is an unextracted FN.
  std::vector<chains::CandidateSequence> candidates = {
      make_candidate(n, 1030.0, false)};
  std::vector<FailurePrediction> predictions = {make_prediction(n, true, 50.0)};
  const SystemEvaluation eval =
      Evaluator::evaluate(candidates, predictions, truth);
  EXPECT_EQ(eval.counts.tp, 0u);
  EXPECT_EQ(eval.counts.fp, 1u);
  EXPECT_EQ(eval.counts.fn, 1u);
}

TEST(Evaluator, SizeMismatchThrows) {
  logs::GroundTruth truth;
  std::vector<chains::CandidateSequence> candidates(2);
  std::vector<FailurePrediction> predictions(1);
  EXPECT_THROW(Evaluator::evaluate(candidates, predictions, truth),
               util::InvalidArgument);
}

}  // namespace
}  // namespace desh::core
