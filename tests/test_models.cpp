// Learning-behaviour tests for the two sequence models: both must be able to
// memorize small deterministic corpora (the property phase 1/2 training
// relies on) and expose sane inference APIs.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/chain_model.hpp"
#include "nn/inference_backend.hpp"
#include "nn/optimizer.hpp"
#include "nn/phrase_model.hpp"
#include "nn/serialize.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace desh::nn {
namespace {

PhraseModelConfig small_phrase_config() {
  PhraseModelConfig c;
  c.vocab_size = 8;
  c.embed_dim = 8;
  c.hidden_size = 16;
  c.num_layers = 2;
  return c;
}

TEST(PhraseModel, LearnsDeterministicCycle) {
  util::Rng rng(1);
  PhraseModel model(small_phrase_config(), rng);
  // Deterministic cycle 0 1 2 3 4 5 6 7 0 1 ...
  std::vector<std::vector<std::uint32_t>> windows;
  for (std::uint32_t start = 0; start < 8; ++start) {
    std::vector<std::uint32_t> w(6);
    for (std::size_t i = 0; i < w.size(); ++i)
      w[i] = (start + static_cast<std::uint32_t>(i)) % 8;
    windows.push_back(w);
  }
  Sgd opt(0.5f, 0.9f);
  float loss = 0;
  for (int epoch = 0; epoch < 150; ++epoch)
    loss = model.train_batch(windows, /*steps=*/1, opt);
  EXPECT_LT(loss, 0.1f);
  EXPECT_GT(ReferenceBackend(model).evaluate_top1(windows, 5), 0.99);
}

TEST(PhraseModel, MultiStepPredictionFollowsCycle) {
  util::Rng rng(2);
  PhraseModel model(small_phrase_config(), rng);
  std::vector<std::vector<std::uint32_t>> windows;
  for (std::uint32_t start = 0; start < 8; ++start) {
    std::vector<std::uint32_t> w(8);
    for (std::size_t i = 0; i < w.size(); ++i)
      w[i] = (start + static_cast<std::uint32_t>(i)) % 8;
    windows.push_back(w);
  }
  Sgd opt(0.5f, 0.9f);
  for (int epoch = 0; epoch < 200; ++epoch)
    model.train_batch(windows, /*steps=*/3, opt);

  const std::uint32_t prefix[] = {0, 1, 2, 3};
  const auto next = ReferenceBackend(model).predict_steps(prefix, 3);
  ASSERT_EQ(next.size(), 3u);
  EXPECT_EQ(next[0], 4u);
  EXPECT_EQ(next[1], 5u);
  EXPECT_EQ(next[2], 6u);
}

TEST(PhraseModel, DistributionSumsToOne) {
  util::Rng rng(3);
  PhraseModel model(small_phrase_config(), rng);
  const std::uint32_t prefix[] = {1, 2};
  const auto probs = ReferenceBackend(model).predict_distribution(prefix);
  ASSERT_EQ(probs.size(), 8u);
  float sum = 0;
  for (float p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST(PhraseModel, TopgContainsArgmax) {
  util::Rng rng(4);
  PhraseModel model(small_phrase_config(), rng);
  std::vector<std::vector<std::uint32_t>> windows = {{0, 1, 2, 3}};
  // Top-8 of an 8-vocab always contains the actual token.
  EXPECT_EQ(ReferenceBackend(model).evaluate_topg(windows, 3, 8), 1.0);
}

TEST(PhraseModel, ValidatesInputs) {
  util::Rng rng(5);
  PhraseModel model(small_phrase_config(), rng);
  Sgd opt(0.1f);
  std::vector<std::vector<std::uint32_t>> empty;
  EXPECT_THROW(model.train_batch(empty, 1, opt), util::InvalidArgument);
  std::vector<std::vector<std::uint32_t>> ragged = {{0, 1, 2}, {0, 1}};
  EXPECT_THROW(model.train_batch(ragged, 1, opt), util::InvalidArgument);
  std::vector<std::vector<std::uint32_t>> too_short = {{0}};
  EXPECT_THROW(model.train_batch(too_short, 1, opt), util::InvalidArgument);
}

TEST(PhraseModel, ParametersSaveLoadRoundTrip) {
  util::Rng rng(6);
  PhraseModel a(small_phrase_config(), rng);
  PhraseModel b(small_phrase_config(), rng);  // different init
  const std::string path = ::testing::TempDir() + "/desh_phrase_model.bin";
  save_parameters(a.parameters(), path);
  load_parameters(b.parameters(), path);
  const std::uint32_t prefix[] = {0, 1, 2};
  const auto pa = ReferenceBackend(a).predict_distribution(prefix);
  const auto pb = ReferenceBackend(b).predict_distribution(prefix);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
  std::remove(path.c_str());
}

ChainModelConfig small_chain_config() {
  ChainModelConfig c;
  c.vocab_size = 10;
  c.embed_dim = 8;
  c.hidden_size = 16;
  c.num_layers = 2;
  c.history = 3;
  return c;
}

ChainSequence make_chain(std::initializer_list<std::uint32_t> phrases,
                         double total_seconds) {
  ChainSequence seq;
  std::size_t n = phrases.size();
  std::size_t i = 0;
  for (std::uint32_t p : phrases) {
    const double dt =
        total_seconds * static_cast<double>(n - 1 - i) / static_cast<double>(n - 1);
    seq.push_back(ChainStep{ChainModel::normalize_dt(dt), p});
    ++i;
  }
  return seq;
}

TEST(ChainModel, NormalizeDenormalizeRoundTrip) {
  for (double s : {0.0, 30.0, 120.0, 599.0, 1200.0}) {
    EXPECT_NEAR(ChainModel::denormalize_dt(ChainModel::normalize_dt(s)), s,
                1e-3);
  }
  // Negative predictions clamp to zero seconds.
  EXPECT_EQ(ChainModel::denormalize_dt(-0.5f), 0.0);
}

TEST(ChainModel, LearnsChainAndScoresItLow) {
  util::Rng rng(7);
  ChainModel model(small_chain_config(), rng);
  const ChainSequence chain = make_chain({1, 2, 3, 4, 5, 6}, 120.0);

  // Train on all prefix windows of the chain (mirrors Phase2Trainer).
  RmsProp opt(0.01f);
  for (int epoch = 0; epoch < 300; ++epoch) {
    for (std::size_t t = 1; t < chain.size(); ++t) {
      const std::size_t ctx = std::min<std::size_t>(t, 3);
      ChainSequence window(chain.begin() + static_cast<std::ptrdiff_t>(t - ctx),
                           chain.begin() + static_cast<std::ptrdiff_t>(t + 1));
      std::vector<ChainSequence> batch = {window};
      model.train_batch(batch, opt);
    }
  }

  const ReferenceBackend backend(model);
  const auto scores = backend.score_sequence(chain, 2);
  ASSERT_FALSE(scores.empty());
  for (const auto& s : scores) {
    EXPECT_EQ(s.predicted_phrase, chain[s.position].phrase)
        << "position " << s.position;
    EXPECT_LT(s.score, 0.3f);
  }
  EXPECT_LT(backend.sequence_mse(chain), 0.3f);

  // A shuffled impostor with the same phrases scores clearly higher.
  const ChainSequence impostor = make_chain({6, 3, 1, 5, 2, 4}, 120.0);
  EXPECT_GT(backend.sequence_mse(impostor), 0.5f);
}

TEST(ChainModel, ScoreSequenceRespectsMinPos) {
  util::Rng rng(8);
  ChainModel model(small_chain_config(), rng);
  const ChainSequence chain = make_chain({1, 2, 3, 4, 5}, 60.0);
  const ReferenceBackend backend(model);
  const auto s2 = backend.score_sequence(chain, 2);
  ASSERT_EQ(s2.size(), 3u);
  EXPECT_EQ(s2.front().position, 2u);
  EXPECT_EQ(s2.back().position, 4u);
  const auto s4 = backend.score_sequence(chain, 4);
  ASSERT_EQ(s4.size(), 1u);
  // Too-short sequences yield no scores and an infinite mse.
  const ChainSequence tiny = make_chain({1, 2}, 10.0);
  EXPECT_TRUE(backend.score_sequence(tiny, 3).empty());
  EXPECT_TRUE(std::isinf(backend.sequence_mse(tiny)));
}

TEST(ChainModel, TrainBatchValidation) {
  util::Rng rng(9);
  ChainModel model(small_chain_config(), rng);
  RmsProp opt(0.01f);
  std::vector<ChainSequence> empty;
  EXPECT_THROW(model.train_batch(empty, opt), util::InvalidArgument);
  std::vector<ChainSequence> short_window = {make_chain({1}, 0.0)};
  // A single-step window has no target.
  EXPECT_THROW(model.train_batch(short_window, opt), util::InvalidArgument);
  std::vector<ChainSequence> ragged = {make_chain({1, 2, 3}, 10.0),
                                       make_chain({1, 2}, 10.0)};
  EXPECT_THROW(model.train_batch(ragged, opt), util::InvalidArgument);
}

// The pre-consolidation per-model inference methods are [[deprecated]]
// forwarding shims for one release; until they are deleted they must stay
// bit-identical to the ReferenceBackend they forward to.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(InferenceBackend, DeprecatedShimsForwardToReferenceBackend) {
  util::Rng rng(10);
  ChainModel chain_model(small_chain_config(), rng);
  const ChainSequence chain = make_chain({1, 2, 3, 4, 5}, 60.0);
  const ReferenceBackend chain_backend(chain_model);
  const auto via_shim = chain_model.score_sequence(chain, 2);
  const auto via_backend = chain_backend.score_sequence(chain, 2);
  ASSERT_EQ(via_shim.size(), via_backend.size());
  for (std::size_t i = 0; i < via_shim.size(); ++i) {
    EXPECT_EQ(via_shim[i].score, via_backend[i].score);
    EXPECT_EQ(via_shim[i].predicted_phrase, via_backend[i].predicted_phrase);
  }
  EXPECT_EQ(chain_model.sequence_mse(chain), chain_backend.sequence_mse(chain));

  PhraseModel phrase_model(small_phrase_config(), rng);
  const ReferenceBackend phrase_backend(phrase_model);
  const std::uint32_t prefix[] = {0, 1, 2};
  const auto shim_probs = phrase_model.predict_distribution(prefix);
  const auto backend_probs = phrase_backend.predict_distribution(prefix);
  ASSERT_EQ(shim_probs.size(), backend_probs.size());
  for (std::size_t i = 0; i < shim_probs.size(); ++i)
    EXPECT_EQ(shim_probs[i], backend_probs[i]);
  EXPECT_EQ(phrase_model.predict_steps(prefix, 3),
            phrase_backend.predict_steps(prefix, 3));
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace desh::nn
