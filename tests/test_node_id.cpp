#include "logs/node_id.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/error.hpp"

namespace desh::logs {
namespace {

TEST(NodeId, FormatsCanonicalCrayForm) {
  const NodeId id{1, 0, 1, 1, 0};
  EXPECT_EQ(id.to_string(), "c1-0c1s1n0");  // Table 2 row 1
  const NodeId id2{4, 0, 0, 0, 2};
  EXPECT_EQ(id2.to_string(), "c4-0c0s0n2");  // Table 2 row 2
}

TEST(NodeId, ParseAcceptsCanonicalForm) {
  const NodeId id = NodeId::parse("c2-0c0s15n2");
  EXPECT_EQ(id.cabinet_x, 2);
  EXPECT_EQ(id.cabinet_y, 0);
  EXPECT_EQ(id.chassis, 0);
  EXPECT_EQ(id.slot, 15);
  EXPECT_EQ(id.node, 2);
}

TEST(NodeId, ParseRejectsMalformedInput) {
  NodeId out;
  EXPECT_FALSE(NodeId::try_parse("", out));
  EXPECT_FALSE(NodeId::try_parse("c1-0c1s1", out));       // missing node
  EXPECT_FALSE(NodeId::try_parse("x1-0c1s1n0", out));     // wrong prefix
  EXPECT_FALSE(NodeId::try_parse("c1-0c1s1n0x", out));    // trailing junk
  EXPECT_FALSE(NodeId::try_parse("c1_0c1s1n0", out));     // wrong separator
  EXPECT_FALSE(NodeId::try_parse("c-0c1s1n0", out));      // missing number
  EXPECT_THROW(NodeId::parse("garbage"), util::InvalidArgument);
}

TEST(NodeId, ParseRejectsOverflow) {
  NodeId out;
  EXPECT_FALSE(NodeId::try_parse("c1-0c1s1n300", out));
  EXPECT_FALSE(NodeId::try_parse("c99999-0c1s1n0", out));
}

TEST(NodeId, LocationDescriptionNamesComponents) {
  const NodeId id{0, 0, 1, 4, 2};
  EXPECT_EQ(id.location_description(), "cabinet 0-0, chassis 1, blade 4, node 2");
}

TEST(NodeId, OrderingAndEquality) {
  const NodeId a{0, 0, 0, 0, 0};
  const NodeId b{0, 0, 0, 0, 1};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, NodeId::parse("c0-0c0s0n0"));
}

TEST(NodeId, HashDistinguishesNearbyIds) {
  std::unordered_set<NodeId> set;
  for (std::uint8_t ch = 0; ch < 3; ++ch)
    for (std::uint8_t sl = 0; sl < 16; ++sl)
      for (std::uint8_t n = 0; n < 4; ++n)
        set.insert(NodeId{0, 0, ch, sl, n});
  EXPECT_EQ(set.size(), 3u * 16u * 4u);
}

// Property: to_string/parse round-trips over a sweep of ids.
class NodeIdRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(NodeIdRoundTrip, RoundTrips) {
  const int seed = GetParam();
  const NodeId id{static_cast<std::uint16_t>(seed % 17),
                  static_cast<std::uint16_t>(seed % 3),
                  static_cast<std::uint8_t>(seed % 3),
                  static_cast<std::uint8_t>(seed % 16),
                  static_cast<std::uint8_t>(seed % 4)};
  EXPECT_EQ(NodeId::parse(id.to_string()), id);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NodeIdRoundTrip,
                         ::testing::Range(0, 60, 7));

}  // namespace
}  // namespace desh::logs
