// Exporter golden-output tests (JSON + Prometheus text format), FileSink
// behavior, and the catalog <-> OBSERVABILITY.md consistency check that
// keeps the documentation honest: every metric the code can emit is
// declared in obs/catalog.hpp (registry methods take a MetricDef, not a
// string), and this test fails if any catalog entry is missing from
// OBSERVABILITY.md.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/obs.hpp"

#ifndef DESH_SOURCE_DIR
#define DESH_SOURCE_DIR "."
#endif

using namespace desh;

namespace {

constexpr obs::MetricDef kGoldenCounter{"golden_alerts_total", "counter",
                                        "alerts", "Alerts raised"};
constexpr obs::MetricDef kGoldenGauge{"golden_queue_depth", "gauge",
                                      "records", "Queue depth"};
constexpr obs::MetricDef kGoldenHist{"golden_latency_seconds", "histogram",
                                     "seconds", "Observe latency"};
constexpr obs::MetricDef kGoldenWorker{"golden_worker_busy_seconds", "gauge",
                                       "seconds", "Busy time per worker"};

class ObsExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
    obs::configure({});
  }

  /// A registry with one metric of every kind + a span, with fixed values.
  void populate(obs::MetricsRegistry& registry) {
    registry.counter(kGoldenCounter).add(3);
    registry.gauge(kGoldenGauge).set(2.5);
    obs::Histogram& h = registry.histogram(kGoldenHist, {0.001, 0.01});
    h.observe(0.0005);
    h.observe(0.005);
    h.observe(1.0);
    registry.gauge(kGoldenWorker, "worker", "0").set(1.5);
    registry.record_span("fit/phase1", 0.25);
    registry.record_span("fit/phase1", 0.75);
  }
};

TEST_F(ObsExportTest, JsonGoldenOutput) {
  obs::MetricsRegistry registry;
  populate(registry);
  const std::string expected = R"({
  "metrics": [
    {"name": "golden_alerts_total", "kind": "counter", "unit": "alerts", "value": 3},
    {"name": "golden_latency_seconds", "kind": "histogram", "unit": "seconds", "buckets": [{"le": 0.001, "count": 1}, {"le": 0.01, "count": 1}, {"le": "+Inf", "count": 1}], "sum": 1.0055, "count": 3},
    {"name": "golden_queue_depth", "kind": "gauge", "unit": "records", "value": 2.5},
    {"name": "golden_worker_busy_seconds", "worker": "0", "kind": "gauge", "unit": "seconds", "value": 1.5}
  ],
  "spans": [
    {"path": "fit/phase1", "count": 2, "total_seconds": 1, "min_seconds": 0.25, "max_seconds": 0.75}
  ]
}
)";
  EXPECT_EQ(obs::to_json(registry.snapshot()), expected);
}

TEST_F(ObsExportTest, PrometheusGoldenOutput) {
  obs::MetricsRegistry registry;
  populate(registry);
  const std::string expected =
      R"(# HELP golden_alerts_total Alerts raised
# TYPE golden_alerts_total counter
golden_alerts_total 3
# HELP golden_latency_seconds Observe latency
# TYPE golden_latency_seconds histogram
golden_latency_seconds_bucket{le="0.001"} 1
golden_latency_seconds_bucket{le="0.01"} 2
golden_latency_seconds_bucket{le="+Inf"} 3
golden_latency_seconds_sum 1.0055
golden_latency_seconds_count 3
# HELP golden_queue_depth Queue depth
# TYPE golden_queue_depth gauge
golden_queue_depth 2.5
# HELP golden_worker_busy_seconds Busy time per worker
# TYPE golden_worker_busy_seconds gauge
golden_worker_busy_seconds{worker="0"} 1.5
# HELP desh_span_seconds TraceSpan wall time by call path
# TYPE desh_span_seconds summary
desh_span_seconds_count{span="fit/phase1"} 2
desh_span_seconds_sum{span="fit/phase1"} 1
desh_span_seconds_min{span="fit/phase1"} 0.25
desh_span_seconds_max{span="fit/phase1"} 0.75
)";
  EXPECT_EQ(obs::to_prometheus(registry.snapshot()), expected);
}

TEST_F(ObsExportTest, EmptyRegistryExportsCleanly) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(obs::to_json(registry.snapshot()),
            "{\n  \"metrics\": [\n  ],\n  \"spans\": [\n  ]\n}\n");
  EXPECT_EQ(obs::to_prometheus(registry.snapshot()), "");
}

TEST_F(ObsExportTest, ApproxQuantile) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram(kGoldenHist, {0.001, 0.01, 0.1});
  for (int i = 0; i < 90; ++i) h.observe(0.0005);  // le=0.001
  for (int i = 0; i < 10; ++i) h.observe(0.05);    // le=0.1
  const obs::RegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_DOUBLE_EQ(obs::approx_quantile(snap.metrics[0], 0.5), 0.001);
  EXPECT_DOUBLE_EQ(obs::approx_quantile(snap.metrics[0], 0.99), 0.1);
}

TEST_F(ObsExportTest, FileSinkFlushesPeriodicallyAndOnShutdown) {
  obs::MetricsRegistry registry;
  registry.counter(kGoldenCounter).add(7);
  const std::string path =
      testing::TempDir() + "/desh_obs_sink_test.json";
  {
    obs::FileSink sink(path, /*interval_seconds=*/0.05, registry);
    sink.flush_now();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_GE(sink.flush_count(), 2u) << "periodic flushes should have run";
  }  // destructor: final flush
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "sink never wrote " << path;
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("golden_alerts_total"), std::string::npos);
  EXPECT_NE(content.str().find("\"value\": 7"), std::string::npos);
}

TEST_F(ObsExportTest, EveryCatalogMetricIsDocumented) {
  std::ifstream in(std::string(DESH_SOURCE_DIR) + "/OBSERVABILITY.md");
  ASSERT_TRUE(in.good()) << "OBSERVABILITY.md missing from the repo root";
  std::stringstream doc_stream;
  doc_stream << in.rdbuf();
  const std::string doc = doc_stream.str();
  for (const obs::MetricDef* def : obs::kCatalog)
    EXPECT_NE(doc.find(def->name), std::string::npos)
        << "metric '" << def->name
        << "' is emitted by the code (obs/catalog.hpp) but not documented "
           "in OBSERVABILITY.md";
  // The span export family must be documented too.
  EXPECT_NE(doc.find("desh_span_seconds"), std::string::npos);
}

}  // namespace
