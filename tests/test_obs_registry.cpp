// MetricsRegistry semantics: counter/gauge/histogram behavior, per-thread
// shard correctness under concurrent increments (run under TSan via the
// `sanitize` ctest label), and snapshot-during-write consistency.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

using namespace desh;

namespace {

constexpr obs::MetricDef kTestCounter{"test_registry_counter", "counter", "1",
                                      "test counter"};
constexpr obs::MetricDef kTestGauge{"test_registry_gauge", "gauge", "1",
                                    "test gauge"};
constexpr obs::MetricDef kTestHist{"test_registry_hist", "histogram",
                                   "seconds", "test histogram"};

class ObsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
    obs::configure({});  // enabled, no sink
  }
  obs::MetricsRegistry registry_;  // fresh instance per test
};

TEST_F(ObsRegistryTest, CounterAddsAndResets) {
  obs::Counter& c = registry_.counter(kTestCounter);
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsRegistryTest, RegistrationIsIdempotent) {
  obs::Counter& a = registry_.counter(kTestCounter);
  obs::Counter& b = registry_.counter(kTestCounter);
  EXPECT_EQ(&a, &b) << "same name must return the same metric";
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
}

TEST_F(ObsRegistryTest, LabeledMetricsAreDistinct) {
  obs::Gauge& w0 = registry_.gauge(kTestGauge, "worker", "0");
  obs::Gauge& w1 = registry_.gauge(kTestGauge, "worker", "1");
  EXPECT_NE(&w0, &w1);
  w0.set(1.0);
  w1.set(2.0);
  EXPECT_DOUBLE_EQ(w0.value(), 1.0);
  EXPECT_DOUBLE_EQ(w1.value(), 2.0);
}

TEST_F(ObsRegistryTest, GaugeSetAndAdd) {
  obs::Gauge& g = registry_.gauge(kTestGauge);
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(0.25);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.set(-3.0);  // set overrides accumulated state
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST_F(ObsRegistryTest, HistogramBucketSemantics) {
  // Prometheus `le` semantics: a value lands in the first bucket whose
  // upper bound is >= value; above the last bound -> +Inf bucket.
  obs::Histogram& h = registry_.histogram(kTestHist, {1.0, 2.0, 4.0});
  h.observe(0.5);   // le=1
  h.observe(1.0);   // le=1 (boundary inclusive)
  h.observe(1.5);   // le=2
  h.observe(4.0);   // le=4
  h.observe(100.0); // +Inf
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST_F(ObsRegistryTest, HistogramDefaultsToLatencyBuckets) {
  obs::Histogram& h = registry_.histogram(kTestHist);
  EXPECT_EQ(h.bounds(), obs::latency_buckets());
}

TEST_F(ObsRegistryTest, RuntimeDisableStopsRecording) {
  obs::Counter& c = registry_.counter(kTestCounter);
  obs::Gauge& g = registry_.gauge(kTestGauge);
  obs::Histogram& h = registry_.histogram(kTestHist, {1.0});
  obs::DeshObsConfig off;
  off.enabled = false;
  obs::configure(off);
  c.add(5);
  g.set(5);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  obs::configure({});
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST_F(ObsRegistryTest, ConcurrentCounterIncrements) {
  obs::Counter& c = registry_.counter(kTestCounter);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsRegistryTest, ConcurrentHistogramObservations) {
  obs::Histogram& h = registry_.histogram(kTestHist, {0.25, 0.5, 1.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(0.1 * static_cast<double>(t % 4));  // hits several buckets
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count());
}

TEST_F(ObsRegistryTest, SnapshotDuringWritesIsMonotonic) {
  obs::Counter& c = registry_.counter(kTestCounter);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) c.add();
  });
  // Counter reads must never tear or go backwards while a writer runs.
  std::uint64_t last = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = c.value();
    EXPECT_GE(v, last);
    last = v;
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(c.value(), c.value());
}

TEST_F(ObsRegistryTest, SnapshotCollectsAllKinds) {
  registry_.counter(kTestCounter).add(3);
  registry_.gauge(kTestGauge).set(1.25);
  registry_.histogram(kTestHist, {1.0}).observe(0.5);
  registry_.record_span("a/b", 0.125);
  const obs::RegistrySnapshot snap = registry_.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  ASSERT_EQ(snap.spans.size(), 1u);
  // Sorted by name: counter < gauge < hist (alphabetical).
  EXPECT_EQ(snap.metrics[0].name, "test_registry_counter");
  EXPECT_EQ(snap.metrics[0].count, 3u);
  EXPECT_EQ(snap.metrics[1].name, "test_registry_gauge");
  EXPECT_DOUBLE_EQ(snap.metrics[1].value, 1.25);
  EXPECT_EQ(snap.metrics[2].name, "test_registry_hist");
  EXPECT_EQ(snap.metrics[2].count, 1u);
  EXPECT_EQ(snap.spans[0].first, "a/b");
  EXPECT_EQ(snap.spans[0].second.count, 1u);
}

TEST_F(ObsRegistryTest, ResetZeroesButKeepsReferences) {
  obs::Counter& c = registry_.counter(kTestCounter);
  obs::Histogram& h = registry_.histogram(kTestHist, {1.0});
  c.add(9);
  h.observe(0.5);
  registry_.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);  // the cached reference is still live
  EXPECT_EQ(registry_.counter(kTestCounter).value(), 1u);
}

}  // namespace
