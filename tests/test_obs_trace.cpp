// TraceSpan RAII scoped timers: parent/child path nesting, aggregation into
// the global registry's span stats, and runtime-disable behavior.
#include <gtest/gtest.h>

#include <thread>

#include "obs/obs.hpp"

using namespace desh;

namespace {

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
    obs::configure({});
    obs::registry().reset();
  }

  static obs::SpanStats find_span(const std::string& path) {
    for (const auto& [p, stats] : obs::registry().snapshot().spans)
      if (p == path) return stats;
    return {};
  }
};

TEST_F(ObsTraceTest, PathNestsParentChild) {
  EXPECT_EQ(obs::TraceSpan::current_path(), "");
  {
    obs::TraceSpan outer("fit");
    EXPECT_EQ(outer.path(), "fit");
    EXPECT_EQ(obs::TraceSpan::current_path(), "fit");
    {
      obs::TraceSpan mid("phase1");
      EXPECT_EQ(mid.path(), "fit/phase1");
      obs::TraceSpan inner("step");
      EXPECT_EQ(inner.path(), "fit/phase1/step");
      EXPECT_EQ(obs::TraceSpan::current_path(), "fit/phase1/step");
    }
    // Children destroyed: back to the outer scope.
    EXPECT_EQ(obs::TraceSpan::current_path(), "fit");
  }
  EXPECT_EQ(obs::TraceSpan::current_path(), "");
}

TEST_F(ObsTraceTest, SiblingsShareParentPath) {
  obs::TraceSpan outer("run");
  {
    obs::TraceSpan a("a");
    EXPECT_EQ(a.path(), "run/a");
  }
  {
    obs::TraceSpan b("b");
    EXPECT_EQ(b.path(), "run/b");
  }
}

TEST_F(ObsTraceTest, StatsAggregatePerPath) {
  for (int i = 0; i < 3; ++i) {
    obs::TraceSpan outer("agg");
    obs::TraceSpan inner("child");
  }
  const obs::SpanStats outer = find_span("agg");
  const obs::SpanStats inner = find_span("agg/child");
  EXPECT_EQ(outer.count, 3u);
  EXPECT_EQ(inner.count, 3u);
  EXPECT_GE(outer.total_seconds, inner.total_seconds);
  EXPECT_GE(outer.max_seconds, outer.min_seconds);
  EXPECT_GE(outer.min_seconds, 0.0);
}

TEST_F(ObsTraceTest, NestingIsPerThread) {
  obs::TraceSpan outer("main_thread");
  std::string other_path;
  std::thread worker([&] {
    obs::TraceSpan span("worker_thread");
    other_path = span.path();
  });
  worker.join();
  // The worker's span does not inherit this thread's live span as parent.
  EXPECT_EQ(other_path, "worker_thread");
  EXPECT_EQ(obs::TraceSpan::current_path(), "main_thread");
}

TEST_F(ObsTraceTest, DisabledSpansRecordNothingButKeepNesting) {
  obs::DeshObsConfig off;
  off.enabled = false;
  obs::configure(off);
  {
    obs::TraceSpan outer("off");
    obs::TraceSpan inner("child");
    // Paths still nest (cheap pointer bookkeeping)...
    EXPECT_EQ(inner.path(), "off/child");
  }
  obs::configure({});
  // ...but nothing was recorded.
  EXPECT_EQ(find_span("off").count, 0u);
  EXPECT_EQ(find_span("off/child").count, 0u);
}

TEST_F(ObsTraceTest, MinMaxTrackExtremes) {
  obs::registry().record_span("manual", 0.5);
  obs::registry().record_span("manual", 0.1);
  obs::registry().record_span("manual", 0.9);
  const obs::SpanStats stats = find_span("manual");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.min_seconds, 0.1);
  EXPECT_DOUBLE_EQ(stats.max_seconds, 0.9);
  EXPECT_DOUBLE_EQ(stats.total_seconds, 1.5);
}

}  // namespace
