// Parallel-equivalence suite for the data-parallel training engine: every
// trainer must produce bit-identical results at 1, 2 and 8 threads (the
// shard decomposition, not the thread count, defines the numerics), and the
// streaming monitor's sharded batch path must reproduce the sequential
// alert stream exactly. Also covers the Phase2 replay buffer across
// repeated online updates and the monitor's re-arm/gap boundary semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/monitor.hpp"
#include "core/phase1.hpp"
#include "core/phase2.hpp"
#include "core/pipeline.hpp"
#include "embed/skipgram.hpp"
#include "logs/generator.hpp"
#include "nn/inference_backend.hpp"
#include "logs/template_miner.hpp"
#include "nn/parameter.hpp"

namespace desh::core {
namespace {

void expect_parameters_identical(nn::ParameterList a, nn::ParameterList b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p]->value.size(), b[p]->value.size()) << a[p]->name;
    const float* va = a[p]->value.data();
    const float* vb = b[p]->value.data();
    for (std::size_t k = 0; k < a[p]->value.size(); ++k)
      ASSERT_EQ(va[k], vb[k]) << a[p]->name << "[" << k << "]";
  }
}

chains::ParsedLog cyclic_log(std::size_t vocab, std::size_t length) {
  chains::ParsedLog log;
  std::vector<chains::ParsedEvent> events;
  for (std::size_t i = 0; i < length; ++i)
    events.push_back({static_cast<double>(i),
                      static_cast<std::uint32_t>(1 + i % (vocab - 1))});
  log.by_node[logs::NodeId{0, 0, 0, 0, 0}] = events;
  log.event_count = length;
  return log;
}

nn::ChainSequence linear_chain(std::initializer_list<std::uint32_t> phrases,
                               double span) {
  nn::ChainSequence seq;
  const std::size_t n = phrases.size();
  std::size_t i = 0;
  for (std::uint32_t p : phrases) {
    const double dt = span * static_cast<double>(n - 1 - i) /
                      static_cast<double>(n - 1);
    seq.push_back({nn::ChainModel::normalize_dt(dt), p});
    ++i;
  }
  return seq;
}

TEST(ParallelPhase1, LossAndModelBitIdenticalAcrossThreadCounts) {
  chains::ParsedLog log = cyclic_log(6, 200);
  auto train = [&log](std::size_t threads) {
    Phase1Config config;
    config.embed_dim = 8;
    config.hidden_size = 16;
    config.history = 4;
    config.steps = 1;
    config.epochs = 3;
    config.batch_size = 8;
    config.window_stride = 1;
    config.threads = threads;
    util::Rng rng(3);
    auto trainer = std::make_unique<Phase1Trainer>(config, 6, rng);
    const float loss = trainer->fit(log);
    return std::make_pair(std::move(trainer), loss);
  };
  auto [serial, loss1] = train(1);
  auto [two, loss2] = train(2);
  auto [eight, loss8] = train(8);
  EXPECT_EQ(loss1, loss2);
  EXPECT_EQ(loss1, loss8);
  expect_parameters_identical(serial->model().parameters(),
                              two->model().parameters());
  expect_parameters_identical(serial->model().parameters(),
                              eight->model().parameters());
  // Post-fit predictions agree too.
  EXPECT_EQ(serial->accuracy(log, 4), two->accuracy(log, 4));
  EXPECT_EQ(serial->accuracy(log, 4), eight->accuracy(log, 4));
}

TEST(ParallelPhase2, LossAndModelBitIdenticalAcrossThreadCounts) {
  const std::vector<nn::ChainSequence> chains = {
      linear_chain({1, 2, 3, 4, 5, 6}, 120.0),
      linear_chain({7, 8, 9, 4, 5, 6}, 90.0),
      linear_chain({2, 4, 6, 8, 1, 3}, 60.0)};
  auto train = [&chains](std::size_t threads) {
    Phase2Config config;
    config.embed_dim = 8;
    config.hidden_size = 16;
    config.epochs = 40;
    config.threads = threads;
    util::Rng rng(5);
    auto trainer = std::make_unique<Phase2Trainer>(config, 10, rng);
    const float loss = trainer->fit(chains);
    return std::make_pair(std::move(trainer), loss);
  };
  auto [serial, loss1] = train(1);
  auto [two, loss2] = train(2);
  auto [eight, loss8] = train(8);
  EXPECT_EQ(loss1, loss2);
  EXPECT_EQ(loss1, loss8);
  expect_parameters_identical(serial->model().parameters(),
                              two->model().parameters());
  expect_parameters_identical(serial->model().parameters(),
                              eight->model().parameters());
  for (const nn::ChainSequence& c : chains) {
    EXPECT_EQ(nn::ReferenceBackend(serial->model()).sequence_mse(c), nn::ReferenceBackend(two->model()).sequence_mse(c));
    EXPECT_EQ(nn::ReferenceBackend(serial->model()).sequence_mse(c), nn::ReferenceBackend(eight->model()).sequence_mse(c));
  }
}

TEST(ParallelSkipGram, VectorsBitIdenticalAcrossThreadCounts) {
  util::Rng data_rng(3);
  std::vector<std::vector<std::uint32_t>> sequences;
  for (int s = 0; s < 50; ++s) {
    std::vector<std::uint32_t> seq;
    const std::uint32_t base = data_rng.chance(0.5) ? 0 : 6;
    for (int i = 0; i < 12; ++i)
      seq.push_back(base +
                    static_cast<std::uint32_t>(data_rng.uniform_index(3)));
    sequences.push_back(std::move(seq));
  }
  auto train = [&sequences](std::size_t threads) {
    embed::SkipGramConfig config;
    config.vocab_size = 12;
    config.dim = 8;
    config.window_before = 2;
    config.window_after = 2;
    config.threads = threads;
    util::Rng rng(2);
    embed::SkipGram sg(config, rng);
    sg.train(sequences, 2);
    return sg.vectors();
  };
  const tensor::Matrix serial = train(1);
  const tensor::Matrix two = train(2);
  const tensor::Matrix eight = train(8);
  ASSERT_EQ(serial.size(), two.size());
  ASSERT_EQ(serial.size(), eight.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    ASSERT_EQ(serial.data()[k], two.data()[k]) << k;
    ASSERT_EQ(serial.data()[k], eight.data()[k]) << k;
  }
}

TEST(ParallelPhase2Update, ReplayBufferAccumulatesAcrossUpdates) {
  Phase2Config config;
  config.embed_dim = 8;
  config.hidden_size = 16;
  config.epochs = 200;
  util::Rng rng(55);
  Phase2Trainer trainer(config, 14, rng);
  const nn::ChainSequence first = linear_chain({1, 2, 3, 4, 5, 6}, 120.0);
  trainer.fit({first});
  ASSERT_LT(nn::ReferenceBackend(trainer.model()).sequence_mse(first), 0.3f);

  // Two successive online updates: the second must replay both the original
  // training chains and the first update's chains, so nothing is forgotten.
  const nn::ChainSequence second = linear_chain({7, 8, 9, 10, 11, 6}, 90.0);
  trainer.update({second}, 150);
  const nn::ChainSequence third = linear_chain({12, 13, 2, 9, 4, 6}, 60.0);
  trainer.update({third}, 150);
  EXPECT_LT(nn::ReferenceBackend(trainer.model()).sequence_mse(first), 0.3f);
  EXPECT_LT(nn::ReferenceBackend(trainer.model()).sequence_mse(second), 0.3f);
  EXPECT_LT(nn::ReferenceBackend(trainer.model()).sequence_mse(third), 0.3f);
}

class ParallelMonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    logs::SyntheticCraySource source(logs::profile_tiny(2024));
    log_ = new logs::SyntheticLog(source.generate());
    auto [train, test] = split_corpus(log_->records, log_->truth.split_time);
    train_ = new logs::LogCorpus(std::move(train));
    test_ = new logs::LogCorpus(std::move(test));
    DeshConfig config;
    config.phase1.epochs = 1;
    pipeline_ = new DeshPipeline(config);
    pipeline_->fit(*train_);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete test_;
    delete train_;
    delete log_;
  }

  /// Replicates the monitor's anomalous-record gate with public pieces:
  /// template extraction, frozen-vocab encoding, Safe-label filtering.
  static bool is_anomalous(const logs::LogRecord& record) {
    static logs::PhraseVocab frozen = pipeline_->vocab();
    const std::string tmpl = logs::TemplateMiner::extract(record.message);
    if (tmpl.empty()) return false;
    const std::uint32_t phrase = frozen.encode(tmpl);
    return pipeline_->labeler().label(phrase) != logs::PhraseLabel::kSafe;
  }

  /// The exact window of anomalous records that produced the trace's first
  /// alert: the last `decision_position + 1` anomalous records of the
  /// alerting node, ending at the alert record. Feeding just these to a
  /// fresh monitor reproduces the alert at the final record.
  static std::vector<logs::LogRecord> first_alert_window() {
    StreamingMonitor probe(*pipeline_);
    std::vector<logs::LogRecord> node_anomalous;
    for (std::size_t i = 0; i < test_->size(); ++i) {
      const auto alert = probe.observe((*test_)[i]);
      if (!alert) continue;
      for (std::size_t j = 0; j <= i; ++j) {
        const logs::LogRecord& r = (*test_)[j];
        if (r.node == alert->node && is_anomalous(r))
          node_anomalous.push_back(r);
      }
      break;
    }
    const std::size_t needed =
        pipeline_->config().phase3.decision_position + 1;
    if (node_anomalous.size() < needed) return {};
    return {node_anomalous.end() - static_cast<std::ptrdiff_t>(needed),
            node_anomalous.end()};
  }

  static logs::SyntheticLog* log_;
  static logs::LogCorpus* train_;
  static logs::LogCorpus* test_;
  static DeshPipeline* pipeline_;
};

logs::SyntheticLog* ParallelMonitorTest::log_ = nullptr;
logs::LogCorpus* ParallelMonitorTest::train_ = nullptr;
logs::LogCorpus* ParallelMonitorTest::test_ = nullptr;
DeshPipeline* ParallelMonitorTest::pipeline_ = nullptr;

TEST_F(ParallelMonitorTest, BatchShardedByNodeMatchesSequentialExactly) {
  StreamingMonitor sequential(*pipeline_);
  std::vector<MonitorAlert> seq_alerts;
  for (const logs::LogRecord& record : *test_)
    if (auto alert = sequential.observe(record))
      seq_alerts.push_back(std::move(*alert));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    MonitorConfig config;
    config.threads = threads;
    StreamingMonitor batched(*pipeline_, config);
    std::vector<MonitorAlert> batch_alerts;
    // Feed in several chunks to exercise state carried across batches.
    const std::size_t chunk = test_->size() / 3 + 1;
    for (std::size_t start = 0; start < test_->size(); start += chunk) {
      const std::size_t count = std::min(chunk, test_->size() - start);
      auto alerts = batched.observe_batch(
          std::span<const logs::LogRecord>(*test_).subspan(start, count));
      for (auto& a : alerts) batch_alerts.push_back(std::move(a));
    }
    EXPECT_EQ(batched.records_seen(), sequential.records_seen());
    EXPECT_EQ(batched.alerts_raised(), sequential.alerts_raised());
    ASSERT_EQ(batch_alerts.size(), seq_alerts.size()) << threads << " threads";
    for (std::size_t i = 0; i < seq_alerts.size(); ++i) {
      EXPECT_EQ(batch_alerts[i].node, seq_alerts[i].node);
      EXPECT_DOUBLE_EQ(batch_alerts[i].time, seq_alerts[i].time);
      EXPECT_DOUBLE_EQ(batch_alerts[i].score, seq_alerts[i].score);
      EXPECT_DOUBLE_EQ(batch_alerts[i].predicted_lead_seconds,
                       seq_alerts[i].predicted_lead_seconds);
      EXPECT_EQ(batch_alerts[i].message, seq_alerts[i].message);
    }
  }
}

TEST_F(ParallelMonitorTest, RearmBoundaryIsInclusive) {
  const std::vector<logs::LogRecord> window = first_alert_window();
  ASSERT_FALSE(window.empty()) << "trace produced no reconstructable alert";
  const double t_end = window.back().timestamp;
  const double duration = t_end - window.front().timestamp;
  const double rearm = duration + 100.0;

  auto run = [&](double shift, std::size_t* alerts_at_shift) {
    MonitorConfig config;
    config.gap_seconds = 1e9;  // isolate re-arm behavior from gap resets
    config.rearm_seconds = rearm;
    StreamingMonitor monitor(*pipeline_, config);
    std::size_t first = 0, second = 0;
    for (const logs::LogRecord& r : window)
      if (monitor.observe(r)) ++first;
    EXPECT_EQ(first, 1u);  // the reconstructed window must alert on its own
    for (logs::LogRecord r : window) {
      r.timestamp += shift;
      if (monitor.observe(r)) ++second;
    }
    *alerts_at_shift = second;
  };

  // Replaying the same window wholly inside the silence period: suppressed.
  std::size_t silenced = 0;
  run(rearm - 1.0, &silenced);
  EXPECT_EQ(silenced, 0u);
  // Ending exactly at silenced_until (= alert time + rearm_seconds): the
  // node is re-armed at that instant and the alert fires again.
  std::size_t rearmed = 0;
  run(rearm, &rearmed);
  EXPECT_EQ(rearmed, 1u);
}

TEST_F(ParallelMonitorTest, GapResetBoundaryIsExclusive) {
  const std::vector<logs::LogRecord> window = first_alert_window();
  ASSERT_FALSE(window.empty()) << "trace produced no reconstructable alert";
  double max_gap = 0.0;
  for (std::size_t i = 1; i < window.size(); ++i)
    max_gap = std::max(max_gap,
                       window[i].timestamp - window[i - 1].timestamp);
  ASSERT_GT(max_gap, 0.0);

  auto alerts_with_gap = [&](double gap_seconds) {
    MonitorConfig config;
    config.gap_seconds = gap_seconds;
    StreamingMonitor monitor(*pipeline_, config);
    std::size_t alerts = 0;
    for (const logs::LogRecord& r : window)
      if (monitor.observe(r)) ++alerts;
    return alerts;
  };

  // A silence of exactly gap_seconds does NOT reset the window (the reset
  // requires strictly greater), so the full window forms and alerts.
  EXPECT_EQ(alerts_with_gap(max_gap), 1u);
  // Any smaller threshold resets mid-window; too few events remain.
  EXPECT_EQ(alerts_with_gap(std::nextafter(max_gap, 0.0)), 0u);
}

}  // namespace
}  // namespace desh::core
