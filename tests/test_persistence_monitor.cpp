// Integration tests for pipeline persistence (the versioned on-disk format
// and its Expected-based API) and the streaming monitor, sharing one
// trained pipeline fixture.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <map>

#include "core/evaluator.hpp"
#include "desh.hpp"
#include "logs/generator.hpp"
#include "util/error.hpp"

namespace desh::core {
namespace {

class PersistenceMonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    logs::SyntheticCraySource source(logs::profile_tiny(2024));
    log_ = new logs::SyntheticLog(source.generate());
    auto [train, test] = split_corpus(log_->records, log_->truth.split_time);
    train_ = new logs::LogCorpus(std::move(train));
    test_ = new logs::LogCorpus(std::move(test));
    DeshConfig config;
    config.phase1.epochs = 1;
    pipeline_ = new DeshPipeline(config);
    pipeline_->fit(*train_);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete test_;
    delete train_;
    delete log_;
  }
  static logs::SyntheticLog* log_;
  static logs::LogCorpus* train_;
  static logs::LogCorpus* test_;
  static DeshPipeline* pipeline_;
};

logs::SyntheticLog* PersistenceMonitorTest::log_ = nullptr;
logs::LogCorpus* PersistenceMonitorTest::train_ = nullptr;
logs::LogCorpus* PersistenceMonitorTest::test_ = nullptr;
DeshPipeline* PersistenceMonitorTest::pipeline_ = nullptr;

TEST_F(PersistenceMonitorTest, SaveLoadPredictsIdentically) {
  const std::string dir = ::testing::TempDir() + "/desh_pipeline_save";
  ASSERT_TRUE(try_save_pipeline(*pipeline_, dir).ok());
  Expected<DeshPipeline> restored_pipeline = try_load_pipeline(dir);
  ASSERT_TRUE(restored_pipeline.ok());
  DeshPipeline loaded = std::move(restored_pipeline).value();
  EXPECT_TRUE(loaded.fitted());
  EXPECT_EQ(loaded.vocab().size(), pipeline_->vocab().size());
  EXPECT_EQ(loaded.training_chains().size(),
            pipeline_->training_chains().size());

  const TestRun original = pipeline_->predict(*test_);
  const TestRun restored = loaded.predict(*test_);
  ASSERT_EQ(original.predictions.size(), restored.predictions.size());
  for (std::size_t i = 0; i < original.predictions.size(); ++i) {
    EXPECT_EQ(original.predictions[i].flagged, restored.predictions[i].flagged);
    EXPECT_DOUBLE_EQ(original.predictions[i].score,
                     restored.predictions[i].score);
    EXPECT_DOUBLE_EQ(original.predictions[i].lead_seconds,
                     restored.predictions[i].lead_seconds);
  }
  std::filesystem::remove_all(dir);
}

TEST_F(PersistenceMonitorTest, SaveRequiresFittedPipeline) {
  DeshPipeline fresh;
  const Expected<void> r = try_save_pipeline(fresh, ::testing::TempDir() + "/x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
}

TEST_F(PersistenceMonitorTest, LoadRejectsMissingOrCorruptDirectory) {
  const Expected<DeshPipeline> missing =
      try_load_pipeline("/nonexistent/desh-dir");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kIo);

  const std::string dir = ::testing::TempDir() + "/desh_pipeline_corrupt";
  ASSERT_TRUE(try_save_pipeline(*pipeline_, dir).ok());
  // Corrupt the config format marker.
  {
    std::ofstream os(dir + "/config.txt");
    os << "format=bogus\n";
  }
  const Expected<DeshPipeline> corrupt = try_load_pipeline(dir);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.error().code, ErrorCode::kIo);
  std::filesystem::remove_all(dir);
}

namespace {
/// Rewrites config.txt in `dir` through `edit(lines)`.
void edit_config(const std::string& dir,
                 const std::function<void(std::vector<std::string>&)>& edit) {
  const std::string path = dir + "/config.txt";
  std::vector<std::string> lines;
  {
    std::ifstream is(path);
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
  }
  edit(lines);
  std::ofstream os(path);
  for (const std::string& line : lines) os << line << "\n";
}
}  // namespace

TEST_F(PersistenceMonitorTest, LoadsPreviousFormatVersionWithDefaults) {
  const std::string dir = ::testing::TempDir() + "/desh_pipeline_v1";
  ASSERT_TRUE(try_save_pipeline(*pipeline_, dir).ok());
  // Rewrite the current save as a faithful version-1 file: old format
  // stamp, no p3.cumulative_dt key (v1 predates the flag).
  edit_config(dir, [](std::vector<std::string>& lines) {
    std::vector<std::string> kept;
    for (std::string& line : lines) {
      if (line.rfind("format=", 0) == 0) line = "format=desh-pipeline-1";
      if (line.rfind("p3.cumulative_dt=", 0) == 0) continue;
      kept.push_back(std::move(line));
    }
    lines = std::move(kept);
  });
  Expected<DeshPipeline> loaded = try_load_pipeline(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  // v1 models were always trained with the paper's cumulative encoding.
  EXPECT_TRUE(loaded.value().config().phase3.cumulative_dt);
  EXPECT_EQ(loaded.value().vocab().size(), pipeline_->vocab().size());
  std::filesystem::remove_all(dir);
}

TEST_F(PersistenceMonitorTest, CurrentFormatRoundTripsCumulativeDtFlag) {
  const std::string dir = ::testing::TempDir() + "/desh_pipeline_v2";
  ASSERT_TRUE(try_save_pipeline(*pipeline_, dir).ok());
  // Flip the v2-only key on disk and confirm it actually drives the
  // restored config (adjacent-gap ablation models must not silently
  // replay with cumulative semantics).
  edit_config(dir, [](std::vector<std::string>& lines) {
    for (std::string& line : lines)
      if (line.rfind("p3.cumulative_dt=", 0) == 0) line = "p3.cumulative_dt=0";
  });
  Expected<DeshPipeline> loaded = try_load_pipeline(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_FALSE(loaded.value().config().phase3.cumulative_dt);
  std::filesystem::remove_all(dir);
}

TEST_F(PersistenceMonitorTest, FutureFormatVersionIsAClearError) {
  const std::string dir = ::testing::TempDir() + "/desh_pipeline_future";
  ASSERT_TRUE(try_save_pipeline(*pipeline_, dir).ok());
  edit_config(dir, [](std::vector<std::string>& lines) {
    for (std::string& line : lines)
      if (line.rfind("format=", 0) == 0)
        line = "format=desh-pipeline-" +
               std::to_string(kPipelineFormatVersion + 1);
  });
  const Expected<DeshPipeline> loaded = try_load_pipeline(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kFormatVersion);
  // The message must name the versions involved, not just say "bad format".
  EXPECT_NE(loaded.error().message.find(
                std::to_string(kPipelineFormatVersion + 1)),
            std::string::npos);
  EXPECT_NE(loaded.error().message.find("upgrade"), std::string::npos);
  std::filesystem::remove_all(dir);
}

// The throwing save_pipeline/load_pipeline wrappers are gone (their
// deprecation release has passed); the Expected API is the only entry
// point, and every failure mode comes back as a value, never a throw.
TEST_F(PersistenceMonitorTest, ExpectedApiCoversAllFormerWrapperBehavior) {
  const std::string dir = ::testing::TempDir() + "/desh_pipeline_expected";
  ASSERT_TRUE(try_save_pipeline(*pipeline_, dir).ok());
  const Expected<DeshPipeline> loaded = try_load_pipeline(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().fitted());
  const Expected<DeshPipeline> missing =
      try_load_pipeline("/nonexistent/desh-dir");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kIo);
  DeshPipeline fresh;
  const Expected<void> unfitted = try_save_pipeline(fresh, dir);
  ASSERT_FALSE(unfitted.ok());
  EXPECT_EQ(unfitted.error().code, ErrorCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

TEST_F(PersistenceMonitorTest, MonitorRaisesAlertsBeforeFailures) {
  StreamingMonitor monitor(*pipeline_);
  struct Alert {
    logs::NodeId node;
    double time;
  };
  std::vector<Alert> alerts;
  for (const logs::LogRecord& record : *test_)
    if (const auto alert = monitor.observe(record))
      alerts.push_back({alert->node, alert->time});
  EXPECT_EQ(monitor.records_seen(), test_->size());
  EXPECT_EQ(monitor.alerts_raised(), alerts.size());
  ASSERT_GT(alerts.size(), 0u);

  // A majority of test-window failures must have an alert strictly before
  // (or at) the terminal, on the right node, within the chain window.
  std::size_t warned = 0, total = 0;
  for (const logs::FailureEvent& f : log_->truth.failures) {
    if (f.terminal_time < log_->truth.split_time || f.novel) continue;
    ++total;
    for (const Alert& a : alerts)
      if (a.node == f.node && a.time >= f.start_time - 1.0 &&
          a.time <= f.terminal_time) {
        ++warned;
        break;
      }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(warned) / static_cast<double>(total), 0.5);
}

TEST_F(PersistenceMonitorTest, MonitorAlertCarriesActionableFields) {
  StreamingMonitor monitor(*pipeline_);
  for (const logs::LogRecord& record : *test_) {
    const auto alert = monitor.observe(record);
    if (!alert) continue;
    EXPECT_GT(alert->predicted_lead_seconds, 0.0);
    EXPECT_LE(alert->score, pipeline_->config().phase3.mse_threshold);
    EXPECT_NE(alert->message.find(alert->node.to_string()), std::string::npos);
    EXPECT_NE(alert->message.find("expected to fail"), std::string::npos);
    return;  // one alert inspected is enough
  }
  FAIL() << "monitor never alerted";
}

TEST_F(PersistenceMonitorTest, MonitorRearmSuppressesDuplicateAlerts) {
  MonitorConfig config;
  config.rearm_seconds = 1e9;  // never re-arm within the trace
  StreamingMonitor monitor(*pipeline_, config);
  std::map<logs::NodeId, std::size_t> per_node;
  for (const logs::LogRecord& record : *test_)
    if (const auto alert = monitor.observe(record)) ++per_node[alert->node];
  for (const auto& [node, count] : per_node)
    EXPECT_EQ(count, 1u) << node.to_string();
}

TEST_F(PersistenceMonitorTest, MonitorResetClearsState) {
  StreamingMonitor monitor(*pipeline_);
  for (const logs::LogRecord& record : *test_) monitor.observe(record);
  const std::size_t first_pass = monitor.alerts_raised();
  monitor.reset();
  for (const logs::LogRecord& record : *test_) monitor.observe(record);
  EXPECT_EQ(monitor.alerts_raised(), 2 * first_pass);
}

TEST_F(PersistenceMonitorTest, MonitorRequiresFittedPipeline) {
  DeshPipeline fresh;
  EXPECT_THROW(StreamingMonitor{fresh}, util::InvalidArgument);
}

}  // namespace
}  // namespace desh::core
