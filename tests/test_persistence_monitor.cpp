// Integration tests for pipeline persistence and the streaming monitor,
// sharing one trained pipeline fixture.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "core/evaluator.hpp"
#include "core/monitor.hpp"
#include "core/persistence.hpp"
#include "core/pipeline.hpp"
#include "logs/generator.hpp"
#include "util/error.hpp"

namespace desh::core {
namespace {

class PersistenceMonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    logs::SyntheticCraySource source(logs::profile_tiny(2024));
    log_ = new logs::SyntheticLog(source.generate());
    auto [train, test] = split_corpus(log_->records, log_->truth.split_time);
    train_ = new logs::LogCorpus(std::move(train));
    test_ = new logs::LogCorpus(std::move(test));
    DeshConfig config;
    config.phase1.epochs = 1;
    pipeline_ = new DeshPipeline(config);
    pipeline_->fit(*train_);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete test_;
    delete train_;
    delete log_;
  }
  static logs::SyntheticLog* log_;
  static logs::LogCorpus* train_;
  static logs::LogCorpus* test_;
  static DeshPipeline* pipeline_;
};

logs::SyntheticLog* PersistenceMonitorTest::log_ = nullptr;
logs::LogCorpus* PersistenceMonitorTest::train_ = nullptr;
logs::LogCorpus* PersistenceMonitorTest::test_ = nullptr;
DeshPipeline* PersistenceMonitorTest::pipeline_ = nullptr;

TEST_F(PersistenceMonitorTest, SaveLoadPredictsIdentically) {
  const std::string dir = ::testing::TempDir() + "/desh_pipeline_save";
  save_pipeline(*pipeline_, dir);
  DeshPipeline loaded = load_pipeline(dir);
  EXPECT_TRUE(loaded.fitted());
  EXPECT_EQ(loaded.vocab().size(), pipeline_->vocab().size());
  EXPECT_EQ(loaded.training_chains().size(),
            pipeline_->training_chains().size());

  const TestRun original = pipeline_->predict(*test_);
  const TestRun restored = loaded.predict(*test_);
  ASSERT_EQ(original.predictions.size(), restored.predictions.size());
  for (std::size_t i = 0; i < original.predictions.size(); ++i) {
    EXPECT_EQ(original.predictions[i].flagged, restored.predictions[i].flagged);
    EXPECT_DOUBLE_EQ(original.predictions[i].score,
                     restored.predictions[i].score);
    EXPECT_DOUBLE_EQ(original.predictions[i].lead_seconds,
                     restored.predictions[i].lead_seconds);
  }
  std::filesystem::remove_all(dir);
}

TEST_F(PersistenceMonitorTest, SaveRequiresFittedPipeline) {
  DeshPipeline fresh;
  EXPECT_THROW(save_pipeline(fresh, ::testing::TempDir() + "/x"),
               util::InvalidArgument);
}

TEST_F(PersistenceMonitorTest, LoadRejectsMissingOrCorruptDirectory) {
  EXPECT_THROW(load_pipeline("/nonexistent/desh-dir"), util::IoError);
  const std::string dir = ::testing::TempDir() + "/desh_pipeline_corrupt";
  save_pipeline(*pipeline_, dir);
  // Corrupt the config format marker.
  {
    std::ofstream os(dir + "/config.txt");
    os << "format=bogus\n";
  }
  EXPECT_THROW(load_pipeline(dir), util::IoError);
  std::filesystem::remove_all(dir);
}

TEST_F(PersistenceMonitorTest, MonitorRaisesAlertsBeforeFailures) {
  StreamingMonitor monitor(*pipeline_);
  struct Alert {
    logs::NodeId node;
    double time;
  };
  std::vector<Alert> alerts;
  for (const logs::LogRecord& record : *test_)
    if (const auto alert = monitor.observe(record))
      alerts.push_back({alert->node, alert->time});
  EXPECT_EQ(monitor.records_seen(), test_->size());
  EXPECT_EQ(monitor.alerts_raised(), alerts.size());
  ASSERT_GT(alerts.size(), 0u);

  // A majority of test-window failures must have an alert strictly before
  // (or at) the terminal, on the right node, within the chain window.
  std::size_t warned = 0, total = 0;
  for (const logs::FailureEvent& f : log_->truth.failures) {
    if (f.terminal_time < log_->truth.split_time || f.novel) continue;
    ++total;
    for (const Alert& a : alerts)
      if (a.node == f.node && a.time >= f.start_time - 1.0 &&
          a.time <= f.terminal_time) {
        ++warned;
        break;
      }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(warned) / static_cast<double>(total), 0.5);
}

TEST_F(PersistenceMonitorTest, MonitorAlertCarriesActionableFields) {
  StreamingMonitor monitor(*pipeline_);
  for (const logs::LogRecord& record : *test_) {
    const auto alert = monitor.observe(record);
    if (!alert) continue;
    EXPECT_GT(alert->predicted_lead_seconds, 0.0);
    EXPECT_LE(alert->score, pipeline_->config().phase3.mse_threshold);
    EXPECT_NE(alert->message.find(alert->node.to_string()), std::string::npos);
    EXPECT_NE(alert->message.find("expected to fail"), std::string::npos);
    return;  // one alert inspected is enough
  }
  FAIL() << "monitor never alerted";
}

TEST_F(PersistenceMonitorTest, MonitorRearmSuppressesDuplicateAlerts) {
  MonitorConfig config;
  config.rearm_seconds = 1e9;  // never re-arm within the trace
  StreamingMonitor monitor(*pipeline_, config);
  std::map<logs::NodeId, std::size_t> per_node;
  for (const logs::LogRecord& record : *test_)
    if (const auto alert = monitor.observe(record)) ++per_node[alert->node];
  for (const auto& [node, count] : per_node)
    EXPECT_EQ(count, 1u) << node.to_string();
}

TEST_F(PersistenceMonitorTest, MonitorResetClearsState) {
  StreamingMonitor monitor(*pipeline_);
  for (const logs::LogRecord& record : *test_) monitor.observe(record);
  const std::size_t first_pass = monitor.alerts_raised();
  monitor.reset();
  for (const logs::LogRecord& record : *test_) monitor.observe(record);
  EXPECT_EQ(monitor.alerts_raised(), 2 * first_pass);
}

TEST_F(PersistenceMonitorTest, MonitorRequiresFittedPipeline) {
  DeshPipeline fresh;
  EXPECT_THROW(StreamingMonitor{fresh}, util::InvalidArgument);
}

}  // namespace
}  // namespace desh::core
