// Unit tests for the three phase drivers on small crafted data.
#include <gtest/gtest.h>

#include "core/phase1.hpp"
#include "core/phase2.hpp"
#include "core/phase3.hpp"
#include "nn/inference_backend.hpp"
#include "util/error.hpp"

namespace desh::core {
namespace {

chains::ParsedLog cyclic_log(std::size_t vocab, std::size_t length) {
  chains::ParsedLog log;
  std::vector<chains::ParsedEvent> events;
  for (std::size_t i = 0; i < length; ++i)
    events.push_back({static_cast<double>(i),
                      static_cast<std::uint32_t>(1 + i % (vocab - 1))});
  log.by_node[logs::NodeId{0, 0, 0, 0, 0}] = events;
  log.event_count = length;
  return log;
}

TEST(Phase1Trainer, MakeWindowsRespectsStrideAndCap) {
  chains::ParsedLog log = cyclic_log(6, 30);
  util::Rng rng(1);
  auto windows = Phase1Trainer::make_windows(log, 10, 2, 1000, rng);
  EXPECT_EQ(windows.size(), (30 - 10) / 2 + 1);
  for (const auto& w : windows) EXPECT_EQ(w.size(), 10u);
  auto capped = Phase1Trainer::make_windows(log, 10, 2, 3, rng);
  EXPECT_EQ(capped.size(), 3u);
}

TEST(Phase1Trainer, WindowsNeverStraddleNodes) {
  chains::ParsedLog log;
  std::vector<chains::ParsedEvent> a, b;
  for (int i = 0; i < 6; ++i) a.push_back({double(i), 1u});
  for (int i = 0; i < 6; ++i) b.push_back({double(i), 2u});
  log.by_node[logs::NodeId{0, 0, 0, 0, 0}] = a;
  log.by_node[logs::NodeId{0, 0, 0, 0, 1}] = b;
  util::Rng rng(2);
  auto windows = Phase1Trainer::make_windows(log, 5, 1, 1000, rng);
  ASSERT_EQ(windows.size(), 4u);  // 2 per node
  for (const auto& w : windows) {
    // Within a window, all ids come from the same node's constant stream.
    for (std::uint32_t id : w) EXPECT_EQ(id, w.front());
  }
}

TEST(Phase1Trainer, LearnsCyclicStream) {
  Phase1Config config;
  config.embed_dim = 8;
  config.hidden_size = 16;
  config.history = 4;
  config.steps = 1;
  config.epochs = 12;
  config.batch_size = 8;
  config.window_stride = 1;
  util::Rng rng(3);
  Phase1Trainer trainer(config, 6, rng);
  chains::ParsedLog log = cyclic_log(6, 400);
  trainer.fit(log);
  // A deterministic cycle is perfectly predictable.
  EXPECT_GT(trainer.accuracy(log, 4), 0.95);
}

TEST(Phase1Trainer, FitRequiresWindows) {
  Phase1Config config;
  util::Rng rng(4);
  Phase1Trainer trainer(config, 6, rng);
  chains::ParsedLog tiny = cyclic_log(6, 3);  // shorter than history+steps
  EXPECT_THROW(trainer.fit(tiny), util::InvalidArgument);
}

nn::ChainSequence linear_chain(std::initializer_list<std::uint32_t> phrases,
                               double span) {
  nn::ChainSequence seq;
  const std::size_t n = phrases.size();
  std::size_t i = 0;
  for (std::uint32_t p : phrases) {
    const double dt = span * static_cast<double>(n - 1 - i) /
                      static_cast<double>(n - 1);
    seq.push_back({nn::ChainModel::normalize_dt(dt), p});
    ++i;
  }
  return seq;
}

TEST(Phase2Trainer, FitsChainsAndLossDrops) {
  Phase2Config config;
  config.embed_dim = 8;
  config.hidden_size = 16;
  config.epochs = 150;
  util::Rng rng(5);
  Phase2Trainer trainer(config, 10, rng);
  std::vector<nn::ChainSequence> chains = {
      linear_chain({1, 2, 3, 4, 5, 6}, 120.0),
      linear_chain({7, 8, 9, 4, 5, 6}, 90.0)};
  const float loss = trainer.fit(chains);
  EXPECT_LT(loss, 0.05f);
  EXPECT_LT(nn::ReferenceBackend(trainer.model()).sequence_mse(chains[0]), 0.3f);
  EXPECT_LT(nn::ReferenceBackend(trainer.model()).sequence_mse(chains[1]), 0.3f);
}

TEST(Phase2Trainer, OnlineUpdateLearnsNewModeWithoutForgetting) {
  Phase2Config config;
  config.embed_dim = 8;
  config.hidden_size = 16;
  config.epochs = 200;
  util::Rng rng(55);
  Phase2Trainer trainer(config, 12, rng);
  const nn::ChainSequence original = linear_chain({1, 2, 3, 4, 5, 6}, 120.0);
  trainer.fit({original});
  EXPECT_LT(nn::ReferenceBackend(trainer.model()).sequence_mse(original), 0.3f);

  // A mode never seen in the initial training...
  const nn::ChainSequence fresh = linear_chain({7, 8, 9, 10, 11, 6}, 90.0);
  EXPECT_GT(nn::ReferenceBackend(trainer.model()).sequence_mse(fresh), 0.5f);
  // ...is absorbed by an online update; the old mode survives (replay).
  trainer.update({fresh}, 150);
  EXPECT_LT(nn::ReferenceBackend(trainer.model()).sequence_mse(fresh), 0.3f);
  EXPECT_LT(nn::ReferenceBackend(trainer.model()).sequence_mse(original), 0.3f);
}

TEST(Phase2Trainer, UpdateRequiresPriorFit) {
  Phase2Config config;
  util::Rng rng(56);
  Phase2Trainer trainer(config, 12, rng);
  EXPECT_THROW(trainer.update({linear_chain({1, 2, 3}, 10.0)}, 5),
               util::InvalidArgument);
}

TEST(Phase2Trainer, RejectsDegenerateInput) {
  Phase2Config config;
  util::Rng rng(6);
  Phase2Trainer trainer(config, 10, rng);
  EXPECT_THROW(trainer.fit({}), util::InvalidArgument);
  std::vector<nn::ChainSequence> single = {linear_chain({1}, 0.0)};
  EXPECT_THROW(trainer.fit(single), util::InvalidArgument);
}

class Phase3Fixture : public ::testing::Test {
 protected:
  Phase3Fixture() : rng_(7), trainer_(make_config(), 10, rng_) {
    trained_ = linear_chain({1, 2, 3, 4, 5, 6, 7}, 150.0);
    trainer_.fit({trained_});
  }
  static Phase2Config make_config() {
    Phase2Config c;
    c.embed_dim = 8;
    c.hidden_size = 16;
    c.epochs = 200;
    return c;
  }
  chains::CandidateSequence candidate_from(
      std::initializer_list<std::uint32_t> phrases, double span,
      bool terminal = true) const {
    chains::CandidateSequence c;
    c.node = logs::NodeId{1, 0, 2, 3, 1};
    const std::size_t n = phrases.size();
    std::size_t i = 0;
    for (std::uint32_t p : phrases) {
      const double t = 1000.0 + span * static_cast<double>(i) /
                                    static_cast<double>(n - 1);
      c.events.push_back({t, p});
      ++i;
    }
    c.ends_with_terminal = terminal;
    return c;
  }
  util::Rng rng_;
  Phase2Trainer trainer_;
  nn::ReferenceBackend backend_{trainer_.model()};
  nn::ChainSequence trained_;
};

TEST_F(Phase3Fixture, FlagsTrainedChainWithLeadTime) {
  Phase3Predictor predictor(backend_, Phase3Config{});
  const auto c = candidate_from({1, 2, 3, 4, 5, 6, 7}, 150.0);
  const FailurePrediction p = predictor.decide(c);
  EXPECT_TRUE(p.flagged);
  EXPECT_LT(p.score, 0.5);
  EXPECT_EQ(p.decision_position, 4u);
  // Lead = dt at index 4 of a 7-phrase/150 s linear chain = 150 * 2/6.
  EXPECT_NEAR(p.lead_seconds, 50.0, 1.0);
  EXPECT_EQ(p.node.to_string(), "c1-0c2s3n1");
  EXPECT_NE(p.warning_message().find("c1-0c2s3n1"), std::string::npos);
  EXPECT_NE(p.warning_message().find("expected to fail"), std::string::npos);
}

TEST_F(Phase3Fixture, RejectsShuffledImpostor) {
  Phase3Predictor predictor(backend_, Phase3Config{});
  const auto c = candidate_from({5, 1, 7, 2, 6, 3, 4}, 150.0, false);
  const FailurePrediction p = predictor.decide(c);
  EXPECT_FALSE(p.flagged);
  EXPECT_GT(p.score, 0.5);
  EXPECT_NE(p.warning_message().find("healthy"), std::string::npos);
}

TEST_F(Phase3Fixture, EarlierDecisionGivesLongerLead) {
  Phase3Predictor predictor(backend_, Phase3Config{});
  const auto c = candidate_from({1, 2, 3, 4, 5, 6, 7}, 150.0);
  const FailurePrediction late = predictor.decide_at(c, 5);
  const FailurePrediction early = predictor.decide_at(c, 2);
  EXPECT_GT(early.lead_seconds, late.lead_seconds);
}

TEST_F(Phase3Fixture, DecisionClampsToSequenceEnd) {
  Phase3Predictor predictor(backend_, Phase3Config{});
  const auto c = candidate_from({1, 2, 3, 4, 5, 6, 7}, 150.0);
  const FailurePrediction p = predictor.decide_at(c, 99);
  EXPECT_EQ(p.decision_position, 6u);
  EXPECT_NEAR(p.lead_seconds, 0.0, 1e-3);
}

TEST_F(Phase3Fixture, ConfigValidation) {
  Phase3Config bad;
  bad.min_position = 0;
  EXPECT_THROW(Phase3Predictor(backend_, bad), util::InvalidArgument);
  bad = Phase3Config{};
  bad.decision_position = 1;
  bad.min_position = 2;
  EXPECT_THROW(Phase3Predictor(backend_, bad), util::InvalidArgument);
}

}  // namespace
}  // namespace desh::core
