// End-to-end integration tests: raw synthetic log -> full Desh pipeline ->
// evaluation against ground truth, on the miniature test profile.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/sensitivity.hpp"
#include "logs/generator.hpp"
#include "util/error.hpp"

namespace desh::core {
namespace {

// One shared fixture run (training is the expensive part).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    logs::SyntheticCraySource source(logs::profile_tiny(42));
    log_ = new logs::SyntheticLog(source.generate());
    auto [train, test] = split_corpus(log_->records, log_->truth.split_time);
    train_ = new logs::LogCorpus(std::move(train));
    test_ = new logs::LogCorpus(std::move(test));
    DeshConfig config;
    config.phase1.epochs = 2;  // keep CI fast; accuracy asserted loosely
    pipeline_ = new DeshPipeline(config);
    report_ = new FitReport(pipeline_->fit(*train_));
    run_ = new TestRun(pipeline_->predict(*test_));
  }
  static void TearDownTestSuite() {
    delete run_;
    delete report_;
    delete pipeline_;
    delete test_;
    delete train_;
    delete log_;
  }
  static logs::SyntheticLog* log_;
  static logs::LogCorpus* train_;
  static logs::LogCorpus* test_;
  static DeshPipeline* pipeline_;
  static FitReport* report_;
  static TestRun* run_;
};

logs::SyntheticLog* PipelineTest::log_ = nullptr;
logs::LogCorpus* PipelineTest::train_ = nullptr;
logs::LogCorpus* PipelineTest::test_ = nullptr;
DeshPipeline* PipelineTest::pipeline_ = nullptr;
FitReport* PipelineTest::report_ = nullptr;
TestRun* PipelineTest::run_ = nullptr;

TEST_F(PipelineTest, SplitIsTemporalAndComplete) {
  EXPECT_EQ(train_->size() + test_->size(), log_->records.size());
  for (const logs::LogRecord& r : *train_)
    EXPECT_LT(r.timestamp, log_->truth.split_time);
  for (const logs::LogRecord& r : *test_)
    EXPECT_GE(r.timestamp, log_->truth.split_time);
}

TEST_F(PipelineTest, FitReportIsPopulated) {
  EXPECT_TRUE(pipeline_->fitted());
  EXPECT_GT(report_->train_events, 100u);
  EXPECT_GT(report_->vocab_size, 30u);
  EXPECT_GT(report_->failure_chains, 5u);
  EXPECT_GE(report_->candidates, report_->failure_chains);
  EXPECT_GT(report_->phase1_accuracy, 0.0);
  EXPECT_GT(report_->phase2_loss, 0.0f);
  EXPECT_LT(report_->phase2_loss, 0.5f);
}

TEST_F(PipelineTest, TrainingChainsCarryDeltaTimes) {
  for (const nn::ChainSequence& chain : pipeline_->training_chains()) {
    ASSERT_GE(chain.size(), 6u);
    EXPECT_EQ(chain.back().dt_norm, 0.0f);  // terminal deltaT = 0 (Table 4)
    for (std::size_t i = 1; i < chain.size(); ++i)
      EXPECT_LT(chain[i].dt_norm, chain[i - 1].dt_norm + 1e-6f);
  }
}

TEST_F(PipelineTest, PredictionsParallelCandidates) {
  EXPECT_EQ(run_->candidates.size(), run_->predictions.size());
  EXPECT_GT(run_->candidates.size(), 10u);
  for (std::size_t i = 0; i < run_->candidates.size(); ++i)
    EXPECT_EQ(run_->candidates[i].node, run_->predictions[i].node);
}

TEST_F(PipelineTest, MeetsQualityFloorOnTinyProfile) {
  const SystemEvaluation eval =
      Evaluator::evaluate(run_->candidates, run_->predictions, log_->truth);
  // The tiny profile has very little training data; floors are deliberately
  // loose — the M1..M4 bench runs assert the paper-band numbers.
  EXPECT_GT(eval.metrics.recall, 0.45) << "TP=" << eval.counts.tp;
  EXPECT_GT(eval.metrics.precision, 0.6);
  EXPECT_GT(eval.counts.tp, 0u);
  EXPECT_GT(eval.lead_times.mean(), 20.0);
  EXPECT_LT(eval.lead_times.mean(), 400.0);
}

TEST_F(PipelineTest, SensitivitySweepTradesLeadForFalsePositives) {
  const auto points =
      lead_time_sensitivity(*pipeline_, *run_, log_->truth, 2, 6);
  ASSERT_EQ(points.size(), 5u);
  // Lead times decrease as the decision moves later.
  EXPECT_GT(points.front().mean_lead_seconds, points.back().mean_lead_seconds);
  for (const auto& p : points) {
    EXPECT_GE(p.fp_rate, 0.0);
    EXPECT_LE(p.fp_rate, 100.0);
  }
}

TEST_F(PipelineTest, RedecideMatchesPredictAtDefaultPosition) {
  const auto again = pipeline_->redecide(
      run_->candidates, pipeline_->config().phase3.decision_position);
  ASSERT_EQ(again.size(), run_->predictions.size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].flagged, run_->predictions[i].flagged);
    EXPECT_DOUBLE_EQ(again[i].score, run_->predictions[i].score);
  }
}

TEST_F(PipelineTest, AccessorsRequireFit) {
  DeshPipeline fresh;
  EXPECT_FALSE(fresh.fitted());
  EXPECT_THROW(fresh.labeler(), util::InvalidArgument);
  EXPECT_THROW(fresh.phase1(), util::InvalidArgument);
  EXPECT_THROW(fresh.predict(*test_), util::InvalidArgument);
  EXPECT_THROW(fresh.redecide({}, 4), util::InvalidArgument);
  logs::LogCorpus empty;
  EXPECT_THROW(fresh.fit(empty), util::InvalidArgument);
}

TEST(PipelineAblation, AdjacentDtEncodingStillDetectsFailures) {
  // The DESIGN.md decision-1 ablation path must remain functional: with
  // inter-arrival deltaT encoding the pipeline still trains and detects a
  // reasonable share of failures (the bench quantifies the lead-time cost).
  logs::SyntheticCraySource source(logs::profile_tiny(77));
  const logs::SyntheticLog log = source.generate();
  auto [train, test] = split_corpus(log.records, log.truth.split_time);
  DeshConfig config;
  config.phase1.epochs = 1;
  config.phase3.cumulative_dt = false;
  DeshPipeline pipeline(config);
  pipeline.fit(train);
  // Adjacent encoding: the first step's dt is always zero.
  for (const nn::ChainSequence& chain : pipeline.training_chains())
    EXPECT_EQ(chain.front().dt_norm, 0.0f);
  const TestRun run = pipeline.predict(test);
  const SystemEvaluation eval =
      Evaluator::evaluate(run.candidates, run.predictions, log.truth);
  EXPECT_GT(eval.counts.tp, 0u);
  // Lead times remain meaningful because phase 3 derives them from raw
  // timestamps, independent of the encoding.
  EXPECT_GT(eval.lead_times.mean(), 10.0);
}

TEST(PipelineDeterminism, SameSeedSameFitReport) {
  logs::SyntheticCraySource source(logs::profile_tiny(11));
  const logs::SyntheticLog log = source.generate();
  auto [train, test] = split_corpus(log.records, log.truth.split_time);
  DeshConfig config;
  config.phase1.epochs = 1;
  config.phase2.epochs = 30;
  DeshPipeline a(config), b(config);
  const FitReport ra = a.fit(train);
  const FitReport rb = b.fit(train);
  EXPECT_EQ(ra.vocab_size, rb.vocab_size);
  EXPECT_EQ(ra.failure_chains, rb.failure_chains);
  EXPECT_EQ(ra.phase1_loss, rb.phase1_loss);
  EXPECT_EQ(ra.phase2_loss, rb.phase2_loss);
  // And phase-3 decisions agree bit-for-bit.
  const TestRun run_a = a.predict(test);
  const TestRun run_b = b.predict(test);
  ASSERT_EQ(run_a.predictions.size(), run_b.predictions.size());
  for (std::size_t i = 0; i < run_a.predictions.size(); ++i)
    EXPECT_DOUBLE_EQ(run_a.predictions[i].score, run_b.predictions[i].score);
}

}  // namespace
}  // namespace desh::core
