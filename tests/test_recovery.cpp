#include "recovery/cluster_sim.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace desh::recovery {
namespace {

std::vector<logs::NodeId> make_nodes(std::size_t count) {
  std::vector<logs::NodeId> nodes;
  for (std::size_t i = 0; i < count; ++i)
    nodes.push_back(logs::NodeId{0, 0, static_cast<std::uint8_t>(i / 64),
                                 static_cast<std::uint8_t>((i / 4) % 16),
                                 static_cast<std::uint8_t>(i % 4)});
  return nodes;
}

WorkloadConfig small_workload() {
  WorkloadConfig w;
  w.duration_seconds = 24 * 3600.0;
  w.job_arrival_rate_per_hour = 6.0;
  w.mean_job_seconds = 3600.0;
  w.max_job_nodes = 2;
  w.seed = 9;
  return w;
}

TEST(ClusterSimulator, ValidatesConstruction) {
  EXPECT_THROW(ClusterSimulator(make_nodes(2), small_workload()),
               util::InvalidArgument);
  WorkloadConfig bad = small_workload();
  bad.max_job_nodes = 40;
  EXPECT_THROW(ClusterSimulator(make_nodes(16), bad), util::InvalidArgument);
}

TEST(ClusterSimulator, NoFailuresMeansNoWasteBeyondCheckpoints) {
  ClusterSimulator sim(make_nodes(16), small_workload());
  const SimulationResult res =
      sim.run(RecoveryPolicyConfig{}, "clean", {}, {});
  EXPECT_GT(res.jobs_submitted, 50u);
  EXPECT_EQ(res.jobs_completed, res.jobs_submitted);
  EXPECT_EQ(res.failure_hits, 0u);
  EXPECT_EQ(res.lost_work_seconds, 0.0);
  EXPECT_EQ(res.quarantine_idle_seconds, 0.0);
  // Checkpoint dilation is the only overhead and must be positive.
  EXPECT_GT(res.overhead_seconds, 0.0);
  // Slowdown >= 1 for every job.
  EXPECT_GE(res.job_slowdowns.quantile(0.0), 1.0);
}

TEST(ClusterSimulator, DeterministicForSameInputs) {
  ClusterSimulator sim(make_nodes(16), small_workload());
  std::vector<NodeFailure> failures = {{make_nodes(16)[3], 7200.0}};
  const auto a = sim.run(RecoveryPolicyConfig{}, "a", failures, {});
  const auto b = sim.run(RecoveryPolicyConfig{}, "b", failures, {});
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.lost_work_seconds, b.lost_work_seconds);
  EXPECT_EQ(a.overhead_seconds, b.overhead_seconds);
}

TEST(ClusterSimulator, FailureOnBusyNodeLosesUncheckpointedWork) {
  // One long job on a small cluster; a failure mid-run costs work.
  WorkloadConfig w = small_workload();
  w.job_arrival_rate_per_hour = 1.0;
  w.mean_job_seconds = 6 * 3600.0;
  ClusterSimulator sim(make_nodes(8), w);

  // Fail every node once mid-trace: at least one strikes a running job.
  std::vector<NodeFailure> failures;
  for (const logs::NodeId& n : make_nodes(8))
    failures.push_back({n, 6 * 3600.0});
  const auto res = sim.run(RecoveryPolicyConfig{}, "hit", failures, {});
  EXPECT_GT(res.failure_hits, 0u);
  EXPECT_GT(res.lost_work_seconds, 0.0);
  EXPECT_EQ(res.failure_saves, 0u);  // reactive: nothing is ever saved
}

TEST(ClusterSimulator, AccurateWarningSavesTheJob) {
  WorkloadConfig w = small_workload();
  w.job_arrival_rate_per_hour = 2.0;
  ClusterSimulator sim(make_nodes(16), w);

  // Fail half the nodes; warn 120 s ahead with perfect accuracy.
  std::vector<NodeFailure> failures;
  for (std::size_t i = 0; i < 8; ++i)
    failures.push_back({make_nodes(16)[i], 4 * 3600.0 + i * 1800.0});
  const auto warnings = oracle_warnings(failures, 120.0);
  ASSERT_EQ(warnings.size(), failures.size());
  for (std::size_t i = 0; i < warnings.size(); ++i)
    EXPECT_DOUBLE_EQ(warnings[i].warn_time, failures[i].fail_time - 120.0);

  RecoveryPolicyConfig proactive;
  proactive.proactive = true;
  const auto oracle = sim.run(proactive, "oracle", failures, warnings);
  const auto reactive = sim.run(RecoveryPolicyConfig{}, "reactive", failures, {});

  // The oracle never loses work to a failure it was warned about.
  EXPECT_EQ(oracle.failure_hits, 0u);
  EXPECT_GT(oracle.failure_saves + oracle.migrations, 0u);
  EXPECT_LT(oracle.lost_work_seconds, reactive.lost_work_seconds + 1.0);
  // And wastes fewer node-seconds overall than reacting (when failures
  // actually hit running jobs).
  if (reactive.failure_hits > 0) {
    EXPECT_LT(oracle.lost_work_seconds, reactive.lost_work_seconds);
  }
}

TEST(ClusterSimulator, FalseWarningCostsAreBounded) {
  WorkloadConfig w = small_workload();
  ClusterSimulator sim(make_nodes(16), w);
  RecoveryPolicyConfig proactive;
  proactive.proactive = true;
  // Three warnings, zero failures: each is a wasted action.
  std::vector<FailureWarning> false_warnings = {
      {make_nodes(16)[1], 3600.0},
      {make_nodes(16)[5], 7200.0},
      {make_nodes(16)[9], 10800.0}};
  const auto res = sim.run(proactive, "fp", {}, false_warnings);
  EXPECT_EQ(res.failure_hits, 0u);
  EXPECT_EQ(res.failure_saves, 0u);
  EXPECT_EQ(res.wasted_migrations, 3u);
  EXPECT_GT(res.quarantine_idle_seconds, 0.0);
  // Quarantine accounting: exactly three windows.
  EXPECT_DOUBLE_EQ(res.quarantine_idle_seconds,
                   3.0 * proactive.quarantine_seconds);
}

TEST(ClusterSimulator, ReactivePolicyIgnoresWarnings) {
  WorkloadConfig w = small_workload();
  ClusterSimulator sim(make_nodes(16), w);
  const auto warnings = std::vector<FailureWarning>{{make_nodes(16)[0], 100.0}};
  const auto res = sim.run(RecoveryPolicyConfig{}, "reactive", {}, warnings);
  EXPECT_EQ(res.migrations, 0u);
  EXPECT_EQ(res.quarantine_idle_seconds, 0.0);
}

TEST(ClusterSimulator, UnknownNodesInInputsAreIgnored) {
  ClusterSimulator sim(make_nodes(8), small_workload());
  std::vector<NodeFailure> failures = {{logs::NodeId{9, 9, 2, 2, 2}, 100.0}};
  std::vector<FailureWarning> warnings = {{logs::NodeId{9, 9, 2, 2, 2}, 50.0}};
  RecoveryPolicyConfig proactive;
  proactive.proactive = true;
  const auto res = sim.run(proactive, "foreign", failures, warnings);
  EXPECT_EQ(res.failure_hits, 0u);
  EXPECT_EQ(res.migrations, 0u);
}

}  // namespace
}  // namespace desh::recovery
