#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace desh::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 123, s2 = 123;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 7;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, LongJumpChangesStream) {
  Xoshiro256 a(5), b(5);
  b.long_jump();
  EXPECT_NE(a(), b());
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(12);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(14);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(15);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(rng.exponential(0.25));
  EXPECT_NEAR(stats.mean(), 4.0, 0.15);
}

TEST(Rng, LognormalIsPositiveWithExpectedMean) {
  Rng rng(16);
  RunningStats stats;
  const double sigma = 0.25;
  const double mu = std::log(100.0) - 0.5 * sigma * sigma;
  for (int i = 0; i < 40000; ++i) {
    const double x = rng.lognormal(mu, sigma);
    EXPECT_GT(x, 0.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 100.0, 2.0);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(17);
  RunningStats small, large;
  for (int i = 0; i < 20000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.0)));
    large.add(static_cast<double>(rng.poisson(200.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 200.0, 2.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(18);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, DiscreteFollowsWeights) {
  Rng rng(19);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.discrete(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 3.0, 0.4);
  EXPECT_NEAR(static_cast<double>(counts[3]) / counts[0], 6.0, 0.8);
}

TEST(Rng, DiscreteRejectsBadInput) {
  Rng rng(20);
  std::vector<double> empty;
  EXPECT_THROW(rng.discrete(empty), InvalidArgument);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.discrete(zeros), InvalidArgument);
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(rng.discrete(negative), InvalidArgument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(22);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(AliasSampler, MatchesTargetDistribution) {
  Rng rng(23);
  const std::vector<double> weights = {0.5, 2.0, 0.0, 1.5};
  AliasSampler sampler(weights);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.125, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.375, 0.015);
}

TEST(AliasSampler, RejectsInvalidWeights) {
  std::vector<double> empty;
  EXPECT_THROW(AliasSampler{empty}, InvalidArgument);
  const std::vector<double> zeros = {0.0};
  EXPECT_THROW(AliasSampler{zeros}, InvalidArgument);
}

// Property sweep: every seed yields in-range uniforms and reproducibility.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, DeterministicAndInRange) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 200; ++i) {
    const double u = a.uniform();
    EXPECT_EQ(u, b.uniform());
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           ~0ULL));

}  // namespace
}  // namespace desh::util
