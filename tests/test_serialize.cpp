#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace desh::nn {
namespace {

Parameter make_param(const std::string& name, std::size_t r, std::size_t c,
                     float seed) {
  Parameter p(name, tensor::Matrix(r, c));
  for (std::size_t i = 0; i < p.value.size(); ++i)
    p.value.data()[i] = seed + static_cast<float>(i);
  return p;
}

TEST(Serialize, RoundTripPreservesValues) {
  Parameter a = make_param("layer.w", 2, 3, 1.0f);
  Parameter b = make_param("layer.b", 1, 3, -5.0f);
  const std::string path = ::testing::TempDir() + "/desh_params.bin";
  save_parameters({&a, &b}, path);

  Parameter a2("layer.w", tensor::Matrix(2, 3));
  Parameter b2("layer.b", tensor::Matrix(1, 3));
  load_parameters({&a2, &b2}, path);
  for (std::size_t i = 0; i < a.value.size(); ++i)
    EXPECT_EQ(a2.value.data()[i], a.value.data()[i]);
  for (std::size_t i = 0; i < b.value.size(); ++i)
    EXPECT_EQ(b2.value.data()[i], b.value.data()[i]);
  std::remove(path.c_str());
}

TEST(Serialize, DetectsNameMismatch) {
  Parameter a = make_param("correct", 1, 2, 0.0f);
  const std::string path = ::testing::TempDir() + "/desh_params_name.bin";
  save_parameters({&a}, path);
  Parameter wrong("different", tensor::Matrix(1, 2));
  EXPECT_THROW(load_parameters({&wrong}, path), util::IoError);
  std::remove(path.c_str());
}

TEST(Serialize, DetectsShapeMismatch) {
  Parameter a = make_param("p", 2, 2, 0.0f);
  const std::string path = ::testing::TempDir() + "/desh_params_shape.bin";
  save_parameters({&a}, path);
  Parameter wrong("p", tensor::Matrix(2, 3));
  EXPECT_THROW(load_parameters({&wrong}, path), util::IoError);
  std::remove(path.c_str());
}

TEST(Serialize, DetectsCountMismatchAndBadMagic) {
  Parameter a = make_param("p", 1, 1, 0.0f);
  Parameter b = make_param("q", 1, 1, 0.0f);
  const std::string path = ::testing::TempDir() + "/desh_params_count.bin";
  save_parameters({&a, &b}, path);
  Parameter only("p", tensor::Matrix(1, 1));
  EXPECT_THROW(load_parameters({&only}, path), util::IoError);

  std::ofstream os(path, std::ios::binary);
  os << "NOTDESH!garbage";
  os.close();
  Parameter any("p", tensor::Matrix(1, 1));
  EXPECT_THROW(load_parameters({&any}, path), util::IoError);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  Parameter p("p", tensor::Matrix(1, 1));
  EXPECT_THROW(load_parameters({&p}, "/nonexistent/model.bin"), util::IoError);
  EXPECT_THROW(save_parameters({&p}, "/nonexistent-dir/model.bin"),
               util::IoError);
}

}  // namespace
}  // namespace desh::nn
