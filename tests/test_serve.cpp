// desh::serve contract tests: replay equivalence (micro-batched serving ==
// sequential observe), explicit backpressure, shed policies, hot model
// reload, and up-front config rejection. Shares one trained pipeline
// fixture (the tiny profile with a cheap phase 1).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include "desh.hpp"
#include "logs/generator.hpp"
#include "logs/template_miner.hpp"

namespace desh::serve {
namespace {

using core::DeshPipeline;
using core::Expected;
using core::MonitorAlert;
using core::StreamingMonitor;

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    logs::SyntheticCraySource source(logs::profile_tiny(2024));
    logs::SyntheticLog log = source.generate();
    auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
    test_ = new logs::LogCorpus(std::move(test));
    core::DeshConfig config;
    config.phase1.epochs = 1;
    pipeline_ = new DeshPipeline(config);
    pipeline_->fit(train);

    // Reconstruct one node's "alert script": every record of the node that
    // raises the stream's first alert, up to and including the trigger —
    // replaying just these records reproduces that alert (per-node state
    // never depends on other nodes).
    StreamingMonitor probe(*pipeline_);
    alert_script_ = new logs::LogCorpus();
    for (const logs::LogRecord& record : *test_) {
      const auto alert = probe.observe(record);
      if (alert) {
        logs::LogCorpus script;
        for (const logs::LogRecord& r : *test_) {
          if (r.node == alert->node) script.push_back(r);
          if (&r == &record) break;
        }
        *alert_script_ = std::move(script);
        break;
      }
    }
    ASSERT_GE(alert_script_->size(), 2u) << "fixture stream never alerted";

    // Safe filler: records whose phrase the labeler gates out, so they
    // never build window state (risk 0 for the shed policy).
    safe_fillers_ = new logs::LogCorpus();
    for (const logs::LogRecord& record : *test_) {
      const std::string tmpl = logs::TemplateMiner::extract(record.message);
      if (tmpl.empty() || pipeline_->labeler().label(pipeline_->vocab().encode(
                              tmpl)) == logs::PhraseLabel::kSafe) {
        logs::LogRecord filler = record;
        filler.node = logs::NodeId{};  // a node the alert script never uses
        filler.node.cabinet_y = 99;
        safe_fillers_->push_back(std::move(filler));
        if (safe_fillers_->size() >= 6) break;
      }
    }
    ASSERT_EQ(safe_fillers_->size(), 6u);
  }
  static void TearDownTestSuite() {
    delete safe_fillers_;
    delete alert_script_;
    delete pipeline_;
    delete test_;
  }

  /// Seeded random interleaving of the corpus that preserves each node's
  /// record order — the only order serving guarantees anything about.
  static logs::LogCorpus interleave(const logs::LogCorpus& corpus,
                                    std::uint32_t seed) {
    std::vector<logs::NodeId> node_order;
    std::unordered_map<logs::NodeId, std::vector<const logs::LogRecord*>>
        by_node;
    for (const logs::LogRecord& r : corpus) {
      auto [it, inserted] = by_node.try_emplace(r.node);
      if (inserted) node_order.push_back(r.node);
      it->second.push_back(&r);
    }
    std::vector<std::size_t> next(node_order.size(), 0);
    std::mt19937 rng(seed);
    logs::LogCorpus out;
    out.reserve(corpus.size());
    std::vector<std::size_t> alive(node_order.size());
    for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = i;
    while (!alive.empty()) {
      const std::size_t pick = std::uniform_int_distribution<std::size_t>(
          0, alive.size() - 1)(rng);
      const std::size_t n = alive[pick];
      out.push_back(*by_node.at(node_order[n])[next[n]++]);
      if (next[n] == by_node.at(node_order[n]).size()) {
        alive[pick] = alive.back();
        alive.pop_back();
      }
    }
    return out;
  }

  static logs::LogCorpus* test_;
  static DeshPipeline* pipeline_;
  static logs::LogCorpus* alert_script_;
  static logs::LogCorpus* safe_fillers_;
};

logs::LogCorpus* ServeTest::test_ = nullptr;
DeshPipeline* ServeTest::pipeline_ = nullptr;
logs::LogCorpus* ServeTest::alert_script_ = nullptr;
logs::LogCorpus* ServeTest::safe_fillers_ = nullptr;

void expect_same_alerts(const std::vector<MonitorAlert>& expected,
                        const std::vector<MonitorAlert>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].node, actual[i].node);
    EXPECT_EQ(expected[i].time, actual[i].time);
    EXPECT_EQ(expected[i].score, actual[i].score);
    EXPECT_EQ(expected[i].predicted_lead_seconds,
              actual[i].predicted_lead_seconds);
    EXPECT_EQ(expected[i].message, actual[i].message);
  }
}

// --- replay equivalence ---------------------------------------------------

TEST_F(ServeTest, MatchesSequentialReplayOnRandomInterleavings) {
  for (const std::uint32_t seed : {11u, 42u}) {
    const logs::LogCorpus stream = interleave(*test_, seed);
    std::vector<MonitorAlert> base;
    StreamingMonitor monitor(*pipeline_);
    for (const logs::LogRecord& record : stream)
      if (auto alert = monitor.observe(record))
        base.push_back(std::move(*alert));
    ASSERT_FALSE(base.empty());

    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      ServeConfig config;
      config.queue_capacity = stream.size();  // below backpressure threshold
      config.max_batch = 64;
      config.monitor.threads = threads;
      Expected<std::unique_ptr<InferenceServer>> server =
          InferenceServer::create(*pipeline_, config);
      ASSERT_TRUE(server.ok()) << server.error().message;
      InferenceServer& srv = *server.value();
      EXPECT_EQ(srv.submit_batch(stream), stream.size());
      srv.drain();
      srv.stop();
      expect_same_alerts(base, srv.poll_alerts());
      const ServeStats stats = srv.stats();
      // Zero records lost below the backpressure threshold.
      EXPECT_EQ(stats.admitted, stream.size());
      EXPECT_EQ(stats.processed, stream.size());
      EXPECT_EQ(stats.rejected, 0u);
      EXPECT_EQ(stats.shed, 0u);
      EXPECT_EQ(stats.alerts, base.size());
      EXPECT_GT(stats.batches, 0u);
    }
  }
}

// --- backpressure ---------------------------------------------------------

TEST_F(ServeTest, BoundedQueueRefusesInsteadOfDropping) {
  ServeConfig config;
  config.queue_capacity = 4;
  config.start_collector = false;
  Expected<std::unique_ptr<InferenceServer>> server =
      InferenceServer::create(*pipeline_, config);
  ASSERT_TRUE(server.ok());
  InferenceServer& srv = *server.value();

  std::size_t accepted = 0, rejected = 0;
  for (const logs::LogRecord& record : *alert_script_)
    (srv.submit(record) == Admission::kAccepted ? accepted : rejected)++;
  EXPECT_EQ(accepted, std::min<std::size_t>(4, alert_script_->size()));
  ServeStats stats = srv.stats();
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.queue_depth, accepted);

  // The refusal is backpressure, not failure: draining frees capacity.
  srv.drain();
  EXPECT_EQ(srv.submit(alert_script_->front()), Admission::kAccepted);
  stats = srv.stats();
  EXPECT_EQ(stats.processed, accepted);
  EXPECT_EQ(stats.shed, 0u);
}

TEST_F(ServeTest, QueueFullRecoveryAfterDrainLosesNoDecisions) {
  // A caller that treats kQueueFull as "pump, then retry the SAME record"
  // must get the identical decision stream to sequential replay: refusal
  // plus recovery loses nothing and reorders nothing.
  std::vector<MonitorAlert> base;
  StreamingMonitor monitor(*pipeline_);
  for (const logs::LogRecord& record : *alert_script_)
    if (auto alert = monitor.observe(record))
      base.push_back(std::move(*alert));
  ASSERT_FALSE(base.empty());

  ServeConfig config;
  config.queue_capacity = 3;  // far smaller than the script: fills repeatedly
  config.max_batch = 2;
  config.start_collector = false;
  Expected<std::unique_ptr<InferenceServer>> server =
      InferenceServer::create(*pipeline_, config);
  ASSERT_TRUE(server.ok());
  InferenceServer& srv = *server.value();

  std::size_t refused = 0;
  for (std::size_t i = 0; i < alert_script_->size(); ++i) {
    const Admission first = srv.submit((*alert_script_)[i]);
    if (first == Admission::kAccepted) continue;
    ASSERT_EQ(first, Admission::kQueueFull);
    ++refused;
    ASSERT_GT(srv.pump(), 0u);  // the drain that makes room...
    // ...after which the refused record is admitted on retry.
    ASSERT_EQ(srv.submit((*alert_script_)[i]), Admission::kAccepted);
  }
  EXPECT_GT(refused, 0u) << "queue never filled: the cycle went untested";
  srv.drain();
  srv.stop();
  expect_same_alerts(base, srv.poll_alerts());
  const ServeStats stats = srv.stats();
  EXPECT_EQ(stats.processed, alert_script_->size());
  EXPECT_EQ(stats.admitted, alert_script_->size());
  EXPECT_EQ(stats.rejected, refused);
  EXPECT_EQ(stats.shed, 0u);
}

// --- shed policies --------------------------------------------------------

// Both shed tests stage the same overload: the alert node's script is
// replayed except its final two records; then [penultimate, trigger,
// 6 fillers] fill the queue to capacity 8 and one pump (max_batch 1,
// watermark 6/8) pops the penultimate record and must shed exactly one of
// the 7 still queued.
class ShedFixture {
 public:
  ShedFixture(const DeshPipeline& pipeline, const logs::LogCorpus& script,
              const logs::LogCorpus& fillers, ShedPolicy policy) {
    ServeConfig config;
    config.queue_capacity = 8;
    config.max_batch = 1;
    config.shed_watermark = 0.75;  // shed down to 6 queued
    config.shed_policy = policy;
    config.start_collector = false;
    server_ = std::move(InferenceServer::create(pipeline, config).value());
    // Warm up: everything but the last two script records, one at a time so
    // the queue never crosses the watermark.
    for (std::size_t i = 0; i + 2 < script.size(); ++i) {
      EXPECT_EQ(server_->submit(script[i]), Admission::kAccepted);
      server_->pump();
    }
    EXPECT_EQ(server_->submit(script[script.size() - 2]),
              Admission::kAccepted);
    EXPECT_EQ(server_->submit(script.back()), Admission::kAccepted);
    for (const logs::LogRecord& filler : fillers)
      EXPECT_EQ(server_->submit(filler), Admission::kAccepted);
    EXPECT_EQ(server_->stats().queue_depth, 8u);
    server_->pump();  // pops the penultimate record; 7 > 6 => shed one
    server_->drain();
  }
  InferenceServer& server() { return *server_; }

 private:
  std::unique_ptr<InferenceServer> server_;
};

TEST_F(ServeTest, OldestFirstShedDropsTheAlertTrigger) {
  ShedFixture fx(*pipeline_, *alert_script_, *safe_fillers_,
                 ShedPolicy::kOldestFirst);
  const ServeStats stats = fx.server().stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
  // The oldest queued record was the alert trigger — the alert is lost.
  EXPECT_EQ(stats.alerts, 0u);
  EXPECT_TRUE(fx.server().poll_alerts().empty());
}

TEST_F(ServeTest, LowestRiskFirstShedPreservesTheAlert) {
  ShedFixture fx(*pipeline_, *alert_script_, *safe_fillers_,
                 ShedPolicy::kLowestRiskFirst);
  const ServeStats stats = fx.server().stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
  // The filler node has no window state (risk 0); the alert node's deep
  // window ranks its trigger record last in the shed order.
  EXPECT_EQ(stats.alerts, 1u);
  const std::vector<MonitorAlert> alerts = fx.server().poll_alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].node, alert_script_->front().node);
}

// --- hot model reload -----------------------------------------------------

TEST_F(ServeTest, SwapModelInstallsAtBatchBoundaryAndServesOn) {
  const std::string dir = ::testing::TempDir() + "/desh_serve_swap";
  ASSERT_TRUE(core::try_save_pipeline(*pipeline_, dir).ok());

  ServeConfig config;
  config.queue_capacity = alert_script_->size();
  config.start_collector = false;
  auto owned = InferenceServer::create(*pipeline_, config);
  ASSERT_TRUE(owned.ok());
  InferenceServer& server = *owned.value();

  // Alert once on the original model.
  server.submit_batch(*alert_script_);
  server.drain();
  EXPECT_EQ(server.poll_alerts().size(), 1u);

  Expected<void> swap = server.swap_model(dir);
  ASSERT_TRUE(swap.ok()) << swap.error().message;
  EXPECT_EQ(server.stats().reloads, 0u);  // staged, not yet installed
  server.drain();                         // install happens at a pump boundary
  EXPECT_EQ(server.stats().reloads, 1u);

  // The reloaded snapshot serves the same alert (fresh window state).
  server.submit_batch(*alert_script_);
  server.drain();
  const std::vector<MonitorAlert> alerts = server.poll_alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].node, alert_script_->front().node);
  std::filesystem::remove_all(dir);
}

TEST_F(ServeTest, SwapModelReportsLoadErrors) {
  ServeConfig config;
  config.start_collector = false;
  auto server = InferenceServer::create(*pipeline_, config);
  ASSERT_TRUE(server.ok());

  const Expected<void> missing = server.value()->swap_model("/nonexistent/d");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, core::ErrorCode::kIo);

  const std::string dir = ::testing::TempDir() + "/desh_serve_swap_future";
  ASSERT_TRUE(core::try_save_pipeline(*pipeline_, dir).ok());
  {
    std::ifstream is(dir + "/config.txt");
    std::string content((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
    const std::string stamp =
        "desh-pipeline-" + std::to_string(core::kPipelineFormatVersion);
    content.replace(content.find(stamp), stamp.size(),
                    "desh-pipeline-" +
                        std::to_string(core::kPipelineFormatVersion + 1));
    std::ofstream os(dir + "/config.txt");
    os << content;
  }
  const Expected<void> future = server.value()->swap_model(dir);
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.error().code, core::ErrorCode::kFormatVersion);
  EXPECT_EQ(server.value()->stats().reloads, 0u);
  std::filesystem::remove_all(dir);
}

// --- up-front rejection ---------------------------------------------------

TEST_F(ServeTest, CreateRejectsNullAndUnfittedPipelines) {
  const Expected<std::unique_ptr<InferenceServer>> null_server =
      InferenceServer::create(std::shared_ptr<const DeshPipeline>{});
  ASSERT_FALSE(null_server.ok());
  EXPECT_EQ(null_server.error().code, core::ErrorCode::kInvalidArgument);

  DeshPipeline fresh;
  const Expected<std::unique_ptr<InferenceServer>> unfitted =
      InferenceServer::create(fresh);
  ASSERT_FALSE(unfitted.ok());
  EXPECT_EQ(unfitted.error().code, core::ErrorCode::kInvalidArgument);
}

TEST_F(ServeTest, CreateRejectsInvalidConfigListingEveryViolation) {
  ServeConfig config;
  config.queue_capacity = 0;
  config.shed_watermark = 2.0;
  config.monitor.gap_seconds = 0;
  const Expected<std::unique_ptr<InferenceServer>> server =
      InferenceServer::create(*pipeline_, config);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.error().code, core::ErrorCode::kInvalidConfig);
  EXPECT_NE(server.error().message.find("serve.queue_capacity"),
            std::string::npos);
  EXPECT_NE(server.error().message.find("serve.shed_watermark"),
            std::string::npos);
  EXPECT_NE(server.error().message.find("serve.monitor.gap_seconds"),
            std::string::npos);
}

TEST_F(ServeTest, SubmitAfterStopIsRefused) {
  ServeConfig config;
  config.start_collector = false;
  auto server = InferenceServer::create(*pipeline_, config);
  ASSERT_TRUE(server.ok());
  server.value()->stop();
  EXPECT_EQ(server.value()->submit(alert_script_->front()),
            Admission::kStopped);
  const Expected<void> swap = server.value()->swap_model("/anywhere");
  EXPECT_FALSE(swap.ok());
}

}  // namespace
}  // namespace desh::serve
