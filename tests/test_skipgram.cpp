#include "embed/skipgram.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace desh::embed {
namespace {

TEST(SkipGram, ValidatesConfig) {
  util::Rng rng(1);
  SkipGramConfig bad;
  bad.vocab_size = 1;
  EXPECT_THROW(SkipGram(bad, rng), util::InvalidArgument);
}

TEST(SkipGram, CoOccurringPhrasesEndUpCloserThanUnrelatedOnes) {
  util::Rng rng(2);
  SkipGramConfig config;
  config.vocab_size = 12;
  config.dim = 8;
  config.window_before = 2;
  config.window_after = 2;
  SkipGram sg(config, rng);

  // Two disjoint "topics": ids {0,1,2} always co-occur, ids {6,7,8} always
  // co-occur; the topics never mix.
  util::Rng data_rng(3);
  std::vector<std::vector<std::uint32_t>> sequences;
  for (int s = 0; s < 200; ++s) {
    std::vector<std::uint32_t> seq;
    const std::uint32_t base = data_rng.chance(0.5) ? 0 : 6;
    for (int i = 0; i < 12; ++i)
      seq.push_back(base + static_cast<std::uint32_t>(data_rng.uniform_index(3)));
    sequences.push_back(std::move(seq));
  }
  sg.train(sequences, /*epochs=*/3);

  // Within-topic similarity beats cross-topic similarity.
  const float within_a = sg.cosine(0, 1);
  const float within_b = sg.cosine(6, 7);
  const float across = sg.cosine(0, 6);
  EXPECT_GT(within_a, across + 0.2f);
  EXPECT_GT(within_b, across + 0.2f);
}

TEST(SkipGram, MostSimilarReturnsSortedNeighbours) {
  util::Rng rng(4);
  SkipGramConfig config;
  config.vocab_size = 6;
  config.dim = 4;
  SkipGram sg(config, rng);
  std::vector<std::vector<std::uint32_t>> sequences = {
      {0, 1, 0, 1, 0, 1, 2, 3, 2, 3, 4, 5}};
  sg.train(sequences, 2);
  const auto sims = sg.most_similar(0, 3);
  ASSERT_EQ(sims.size(), 3u);
  EXPECT_GE(sims[0].second, sims[1].second);
  EXPECT_GE(sims[1].second, sims[2].second);
  for (const auto& [id, sim] : sims) EXPECT_NE(id, 0u);
}

TEST(SkipGram, TrainValidatesInput) {
  util::Rng rng(5);
  SkipGramConfig config;
  config.vocab_size = 4;
  SkipGram sg(config, rng);
  std::vector<std::vector<std::uint32_t>> out_of_vocab = {{0, 9}};
  EXPECT_THROW(sg.train(out_of_vocab, 1), util::InvalidArgument);
  std::vector<std::vector<std::uint32_t>> empty;
  EXPECT_THROW(sg.train(empty, 1), util::InvalidArgument);
}

TEST(SkipGram, VectorsShapeMatchesConfig) {
  util::Rng rng(6);
  SkipGramConfig config;
  config.vocab_size = 7;
  config.dim = 5;
  SkipGram sg(config, rng);
  EXPECT_EQ(sg.vectors().rows(), 7u);
  EXPECT_EQ(sg.vectors().cols(), 5u);
  EXPECT_THROW(sg.cosine(0, 9), util::InvalidArgument);
}

}  // namespace
}  // namespace desh::embed
