#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace desh::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const double data[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  double sum = 0;
  for (double x : data) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / 8.0;
  double ss = 0;
  for (double x : data) ss += (x - mean) * (x - mean);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), ss / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SampleSet, QuantilesInterpolate) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.125), 15.0);
}

TEST(SampleSet, QuantileValidation) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), InvalidArgument);
  s.add(1.0);
  EXPECT_THROW(s.quantile(1.5), InvalidArgument);
  EXPECT_DOUBLE_EQ(s.quantile(0.7), 1.0);
}

TEST(SampleSet, AddAfterQuantileStillCorrect) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.5);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), InvalidArgument);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.bin_count(2), InvalidArgument);
}

}  // namespace
}  // namespace desh::util
