#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace desh::util {
namespace {

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleFieldWithoutDelimiter) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitWhitespace, DropsEmptyTokens) {
  const auto parts = split_whitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(SplitWhitespace, EmptyInput) {
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace("   \t\n ").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Join, InsertsSeparators) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("LustreError: ABC"), "lustreerror: abc");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("LNet: hardware", "LNet"));
  EXPECT_FALSE(starts_with("LNet", "LNet: "));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Contains, CaseSensitivity) {
  EXPECT_TRUE(contains("Kernel panic - not syncing", "panic"));
  EXPECT_FALSE(contains("Kernel panic", "PANIC"));
  EXPECT_TRUE(contains_ci("Kernel panic", "PANIC"));
  EXPECT_TRUE(contains_ci("anything", ""));
}

TEST(FormatFixed, RoundsToDecimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
  EXPECT_EQ(format_fixed(89.88, 2), "89.88");
}

}  // namespace
}  // namespace desh::util
