// util/sync.hpp: the annotated wrappers must behave exactly like the std
// primitives they wrap — lock/unlock/try_lock semantics, RAII scoping,
// CondVar wakeups — because every subsystem's locking now routes through
// them. The *static* side (annotation violations rejected under Clang) is
// covered by tests/compile_fail; this file pins the runtime side.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace {

using desh::util::CondVar;
using desh::util::LockGuard;
using desh::util::Mutex;
using desh::util::UniqueLock;

TEST(Sync, TryLockMatchesStdMutexSemantics) {
  Mutex mu;
  // Uncontended: try_lock succeeds and takes ownership.
  ASSERT_TRUE(mu.try_lock());
  // Contended (from another thread — self-try_lock is UB on std::mutex):
  // try_lock must fail and must NOT block.
  std::atomic<int> result{-1};
  std::thread t([&] { result = mu.try_lock() ? 1 : 0; });
  t.join();
  EXPECT_EQ(result.load(), 0);
  mu.unlock();
  // Released: another thread can take it again.
  std::thread t2([&] {
    if (mu.try_lock()) {
      result = 2;
      mu.unlock();
    }
  });
  t2.join();
  EXPECT_EQ(result.load(), 2);
}

TEST(Sync, LockGuardExcludesConcurrentCriticalSections) {
  Mutex mu;
  int counter = 0;  // non-atomic on purpose: the lock is the protection
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        LockGuard lock(mu);
        ++counter;
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(Sync, LockGuardReleasesOnScopeExit) {
  Mutex mu;
  { LockGuard lock(mu); }
  EXPECT_TRUE(mu.try_lock());  // scope exit released it
  mu.unlock();
}

TEST(Sync, UniqueLockRelocksMidScope) {
  Mutex mu;
  UniqueLock lock(mu);  // constructed locked
  lock.unlock();
  EXPECT_TRUE(mu.try_lock());  // really released
  mu.unlock();
  lock.lock();  // re-acquire through the wrapper
  std::atomic<bool> other_got_it{false};
  std::thread t([&] { other_got_it = mu.try_lock(); });
  t.join();
  EXPECT_FALSE(other_got_it.load());  // really held again
  // Destructor releases the re-acquired lock — no deadlock, next line runs.
}

TEST(Sync, CondVarWaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    UniqueLock lock(mu);
    while (!ready) cv.wait(lock);  // the inline-loop idiom sync.hpp documents
  });
  {
    LockGuard lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();  // hangs (and times out the test) if the wakeup is lost
  SUCCEED();
}

TEST(Sync, CondVarWaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  UniqueLock lock(mu);
  const bool notified = cv.wait_for(lock, std::chrono::milliseconds(10));
  EXPECT_FALSE(notified);  // nobody notified: timeout path returns false
}

TEST(Sync, CondVarNotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i)
    waiters.emplace_back([&] {
      UniqueLock lock(mu);
      while (!go) cv.wait(lock);
      ++woke;
    });
  {
    LockGuard lock(mu);
    go = true;
  }
  cv.notify_all();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

}  // namespace
