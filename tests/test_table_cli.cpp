#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace desh::util {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"System", "Recall"});
  t.add_row({"M1", "85.1"});
  t.add_row({"M2-long-name", "87.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| System"), std::string::npos);
  EXPECT_NE(out.find("| M2-long-name"), std::string::npos);
  // Every rendered line has the same width (alignment property).
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(TextTable, CsvRoundTripWithEscaping) {
  TextTable t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "quote\"inside"});
  const std::string path = ::testing::TempDir() + "/desh_table.csv";
  t.write_csv(path);
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "name,value");
  std::getline(is, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(is, line);
  EXPECT_EQ(line, "\"with,comma\",\"quote\"\"inside\"");
  std::remove(path.c_str());
}

TEST(TextTable, CsvFailsOnBadPath) {
  TextTable t({"x"});
  EXPECT_THROW(t.write_csv("/nonexistent-dir/out.csv"), IoError);
}

TEST(ArgParser, ParsesAllFlagForms) {
  const char* argv[] = {"prog", "pos1",     "--name", "value",
                        "--key=inline", "--num",  "42",    "--enable"};
  ArgParser args(8, argv);
  EXPECT_EQ(args.get("name", ""), "value");
  EXPECT_EQ(args.get("key", ""), "inline");
  EXPECT_TRUE(args.get_bool("enable", false));
  EXPECT_EQ(args.get_int("num", 0), 42);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(ArgParser, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  ArgParser args(1, argv);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", -7), -7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(args.get_bool("missing", false));
  EXPECT_FALSE(args.has("missing"));
}

TEST(ArgParser, BoolParsing) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=YES", "--d=off"};
  ArgParser args(5, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

}  // namespace
}  // namespace desh::util
