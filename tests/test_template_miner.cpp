#include "logs/template_miner.hpp"

#include <gtest/gtest.h>

#include "logs/generator.hpp"
#include "logs/phrase_catalog.hpp"
#include "util/rng.hpp"

namespace desh::logs {
namespace {

TEST(TemplateMiner, ClassifiesDynamicTokens) {
  // Machine-generated content.
  EXPECT_TRUE(TemplateMiner::is_dynamic_token("0x6624"));
  EXPECT_TRUE(TemplateMiner::is_dynamic_token("Info1=0x500:"));
  EXPECT_TRUE(TemplateMiner::is_dynamic_token("/etc/sysctl.conf"));
  EXPECT_TRUE(TemplateMiner::is_dynamic_token("c1-0c1s1n0"));
  EXPECT_TRUE(TemplateMiner::is_dynamic_token("20141216t162520,"));
  EXPECT_TRUE(TemplateMiner::is_dynamic_token("[28451]:0x6624,"));
  EXPECT_TRUE(TemplateMiner::is_dynamic_token("10.0.3.4"));
  EXPECT_TRUE(TemplateMiner::is_dynamic_token("P1"));   // digit-dense short id
  EXPECT_TRUE(TemplateMiner::is_dynamic_token("*"));

  // Static prose, including words with a single embedded digit.
  EXPECT_FALSE(TemplateMiner::is_dynamic_token("LustreError"));
  EXPECT_FALSE(TemplateMiner::is_dynamic_token("Wait4Boot"));
  EXPECT_FALSE(TemplateMiner::is_dynamic_token("severity=Corrected"));
  EXPECT_FALSE(TemplateMiner::is_dynamic_token("gnilnd:kgnilnd"));
  EXPECT_FALSE(TemplateMiner::is_dynamic_token("--ascii"));
  EXPECT_FALSE(TemplateMiner::is_dynamic_token("<node_health>"));
  EXPECT_FALSE(TemplateMiner::is_dynamic_token(""));
}

TEST(TemplateMiner, ExtractsTable2Examples) {
  // Table 2 row 4: the hwerr message splits into static + discarded dynamic.
  EXPECT_EQ(TemplateMiner::extract(
                "hwerr [123]:0x4c: ssid rsp a status msg protocol err error "
                ":Info1=0x4c00054064: Info2=0x0: Info3=0x2"),
            "hwerr * ssid rsp a status msg protocol err error *");
  EXPECT_EQ(TemplateMiner::extract("Running sysctl, using values from "
                                   "/etc/sysctl.conf"),
            "Running sysctl, using values from *");
}

TEST(TemplateMiner, CollapsesDynamicRuns) {
  EXPECT_EQ(TemplateMiner::extract("error 0x1 0x2 0x3 done"), "error * done");
  EXPECT_EQ(TemplateMiner::extract("12 34 56"), "*");
}

TEST(TemplateMiner, NormalizesWhitespace) {
  EXPECT_EQ(TemplateMiner::extract("  a   b\t c  "), "a b c");
  EXPECT_EQ(TemplateMiner::extract(""), "");
  EXPECT_EQ(TemplateMiner::extract("   "), "");
}

// Property: rendering any catalog phrase with random dynamics and mining it
// back must recover the catalog template exactly — this is the contract the
// whole parsing pipeline rests on.
class CatalogRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CatalogRoundTrip, RenderedMessageMinesBackToTemplate) {
  const PhraseCatalog& catalog = PhraseCatalog::instance();
  const CatalogPhrase& phrase = catalog.phrase(GetParam());
  util::Rng rng(GetParam() * 977 + 13);
  for (int trial = 0; trial < 20; ++trial) {
    const std::string raw = SyntheticCraySource::render_message(phrase, rng);
    EXPECT_EQ(TemplateMiner::extract(raw), phrase.tmpl)
        << "raw message: " << raw;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCatalogPhrases, CatalogRoundTrip,
    ::testing::Range<std::size_t>(0, PhraseCatalog::instance().size()));

}  // namespace
}  // namespace desh::logs
