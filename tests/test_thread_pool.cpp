// Unit and stress tests for util::ThreadPool plus the Rng::fork stream
// independence the data-parallel trainers rely on.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace desh::util {
namespace {

TEST(ResolveThreads, ExplicitRequestWins) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_EQ(resolve_threads(1), 1u);
}

TEST(ResolveThreads, EnvVarAppliesWhenUnspecified) {
  setenv("DESH_THREADS", "5", 1);
  EXPECT_EQ(resolve_threads(0), 5u);
  EXPECT_EQ(resolve_threads(2), 2u);  // explicit still wins
  setenv("DESH_THREADS", "garbage", 1);
  EXPECT_GE(resolve_threads(0), 1u);  // unparsable -> fallback, never 0
  unsetenv("DESH_THREADS");
  EXPECT_GE(resolve_threads(0), 1u);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i, std::size_t) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleWorkerRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(16, [&](std::size_t i, std::size_t worker) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(worker, 0u);
    order.push_back(i);  // no lock needed: inline execution is sequential
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, WorkerIdsStayWithinPoolSize) {
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  pool.parallel_for(500, [&](std::size_t, std::size_t worker) {
    if (worker >= 3) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i, std::size_t) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(64, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ZeroAndOneTaskEdgeCases) {
  ThreadPool pool(4);
  int runs = 0;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  pool.parallel_for(1, [&](std::size_t i, std::size_t) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, ReusableAcrossManyEpochs) {
  // Mimics the trainers: one pool, many parallel_for rounds.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int epoch = 0; epoch < 200; ++epoch)
    pool.parallel_for(64, [&](std::size_t i, std::size_t) {
      total.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  EXPECT_EQ(total.load(), 200L * (63 * 64 / 2));
}

TEST(ThreadPool, ManySmallTasksStress) {
  ThreadPool pool(8);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel_for(2000, [&](std::size_t, std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  EXPECT_EQ(total.load(), 50L * 2000);
}

TEST(ThreadPool, SubmitRunsTaskAndPropagatesErrors) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto ok = pool.submit([&] { ran.fetch_add(1); });
  ok.get();
  EXPECT_EQ(ran.load(), 1);
  auto bad = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(RngFork, WorkerStreamsDoNotOverlap) {
  // The trainers hand each shard slot rng.fork(base + slot). Distinct ids
  // must give statistically disjoint streams: across 8 forks x 4096 draws
  // of 64-bit values, any repeat would be a 1-in-2^40 coincidence.
  Rng parent(0xDE5Bu);
  std::set<std::uint64_t> seen;
  std::size_t draws = 0;
  for (std::uint64_t slot = 0; slot < 8; ++slot) {
    Rng child = parent.fork(0x5EED0000ULL + slot);
    for (int i = 0; i < 4096; ++i) {
      seen.insert(child.next_u64());
      ++draws;
    }
  }
  EXPECT_EQ(seen.size(), draws);
}

TEST(RngFork, SameIdGivesSameStream) {
  Rng a(123), b(123);
  Rng fa = a.fork(7), fb = b.fork(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

}  // namespace
}  // namespace desh::util
