#include "chains/unknown_analysis.hpp"

#include <gtest/gtest.h>

#include "logs/generator.hpp"

namespace desh::chains {
namespace {

TEST(UnknownPhraseAnalyzer, ReturnsAllTwelveTable8Phrases) {
  logs::SyntheticCraySource source(logs::profile_tiny(5));
  const logs::SyntheticLog log = source.generate();
  const auto stats = UnknownPhraseAnalyzer::analyze(log.records, log.truth);
  ASSERT_EQ(stats.size(), 12u);
  for (const UnknownPhraseStat& s : stats) {
    EXPECT_FALSE(s.tmpl.empty());
    EXPECT_GT(s.paper_contribution, 0.0);
    EXPECT_LE(s.in_failures, s.total);
  }
}

TEST(UnknownPhraseAnalyzer, MeasuredContributionsTrackTargets) {
  // Larger trace for stable ratios.
  logs::SystemProfile profile = logs::profile_tiny(9);
  profile.failure_count = 150;
  profile.node_count = 48;
  profile.duration_hours = 24.0;
  logs::SyntheticCraySource source(profile);
  const logs::SyntheticLog log = source.generate();
  const auto stats = UnknownPhraseAnalyzer::analyze(log.records, log.truth);
  std::size_t checked = 0;
  for (const UnknownPhraseStat& s : stats) {
    if (s.total < 25) continue;
    EXPECT_NEAR(s.measured_contribution(), s.paper_contribution, 0.16)
        << s.tmpl;
    ++checked;
  }
  EXPECT_GE(checked, 6u);
}

TEST(UnknownPhraseStat, ContributionHandlesZeroTotal) {
  UnknownPhraseStat s;
  EXPECT_EQ(s.measured_contribution(), 0.0);
  s.total = 4;
  s.in_failures = 1;
  EXPECT_DOUBLE_EQ(s.measured_contribution(), 0.25);
}

}  // namespace
}  // namespace desh::chains
