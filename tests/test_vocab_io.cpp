#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/expected.hpp"
#include "logs/io.hpp"
#include "logs/vocab.hpp"
#include "util/error.hpp"

namespace desh::logs {
namespace {

TEST(PhraseVocab, ReservesUnknownSentinel) {
  PhraseVocab vocab;
  EXPECT_EQ(vocab.size(), 1u);
  EXPECT_EQ(vocab.decode(PhraseVocab::kUnknownId),
            PhraseVocab::kUnknownTemplate);
}

TEST(PhraseVocab, AddIsIdempotent) {
  PhraseVocab vocab;
  const auto a = vocab.add("LustreError *");
  const auto b = vocab.add("DVS: Verify Filesystem *");
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.add("LustreError *"), a);
  EXPECT_EQ(vocab.size(), 3u);
}

TEST(PhraseVocab, EncodeUnknownTemplates) {
  PhraseVocab vocab;
  vocab.add("known");
  EXPECT_EQ(vocab.encode("never seen"), PhraseVocab::kUnknownId);
  EXPECT_TRUE(vocab.contains("known"));
  EXPECT_FALSE(vocab.contains("never seen"));
}

TEST(PhraseVocab, DecodeValidatesRange) {
  PhraseVocab vocab;
  EXPECT_THROW(vocab.decode(42), util::InvalidArgument);
  EXPECT_THROW(vocab.add(""), util::InvalidArgument);
}

TEST(PhraseVocab, SaveLoadPreservesIds) {
  PhraseVocab vocab;
  const auto a = vocab.add("alpha *");
  const auto b = vocab.add("beta gamma");
  const std::string path = ::testing::TempDir() + "/desh_vocab.txt";
  ASSERT_TRUE(vocab.save(path).ok());
  core::Expected<PhraseVocab> reloaded = PhraseVocab::load(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().message;
  const PhraseVocab& loaded = reloaded.value();
  EXPECT_EQ(loaded.size(), vocab.size());
  EXPECT_EQ(loaded.encode("alpha *"), a);
  EXPECT_EQ(loaded.encode("beta gamma"), b);
  std::remove(path.c_str());
}

TEST(CorpusIo, RoundTripsRecords) {
  LogCorpus corpus;
  corpus.push_back(LogRecord{12.5, NodeId{1, 0, 2, 3, 1},
                             "LustreError [123]:0x99 something failed"});
  corpus.push_back(LogRecord{100.000123, NodeId{0, 0, 0, 0, 0}, "Wait4Boot"});
  const std::string path = ::testing::TempDir() + "/desh_corpus.log";
  ASSERT_TRUE(save_corpus(corpus, path).ok());
  core::Expected<LogCorpus> reloaded = load_corpus(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().message;
  const LogCorpus& loaded = reloaded.value();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_NEAR(loaded[0].timestamp, 12.5, 1e-6);
  EXPECT_EQ(loaded[0].node, corpus[0].node);
  EXPECT_EQ(loaded[0].message, corpus[0].message);
  EXPECT_NEAR(loaded[1].timestamp, 100.000123, 1e-6);
  std::remove(path.c_str());
}

TEST(CorpusIo, MissingFileReportsIoError) {
  core::Expected<LogCorpus> missing = load_corpus("/nonexistent/corpus.log");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, core::ErrorCode::kIo);
  core::Expected<void> unwritable =
      save_corpus({}, "/nonexistent-dir/corpus.log");
  ASSERT_FALSE(unwritable.ok());
  EXPECT_EQ(unwritable.error().code, core::ErrorCode::kIo);
  core::Expected<PhraseVocab> vocab = PhraseVocab::load("/nonexistent/v.txt");
  ASSERT_FALSE(vocab.ok());
  EXPECT_EQ(vocab.error().code, core::ErrorCode::kIo);
  core::Expected<void> vsave =
      PhraseVocab().save("/nonexistent-dir/v.txt");
  ASSERT_FALSE(vsave.ok());
  EXPECT_EQ(vsave.error().code, core::ErrorCode::kIo);
}

TEST(CorpusIo, MalformedLineReportsInvalidArgument) {
  const std::string path = ::testing::TempDir() + "/desh_bad_corpus.log";
  {
    std::ofstream os(path);
    os << "12.5 only-two-fields\n";
  }
  core::Expected<LogCorpus> bad = load_corpus(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, core::ErrorCode::kInvalidArgument);
  EXPECT_NE(bad.error().message.find("line 1"), std::string::npos)
      << bad.error().message;
  std::remove(path.c_str());
}

TEST(FormatTimestamp, RendersConsoleStyle) {
  EXPECT_EQ(format_timestamp(0.0), "00:00:00.000000");
  EXPECT_EQ(format_timestamp(3661.25), "01:01:01.250000");
  // Wraps at 24h for display.
  EXPECT_EQ(format_timestamp(86400.0 + 60.0), "00:01:00.000000");
}

}  // namespace
}  // namespace desh::logs
