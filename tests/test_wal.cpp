// desh::wal contract tests: the frame codec round-trips arbitrary records
// and its decoder is total (fuzzed with seeded util::Rng mutations), fuzzy
// checkpoints publish atomically and fall back past corrupt/vetoed files,
// DurableLog recovery truncates torn tails instead of replaying garbage,
// monitor state blobs reproduce decisions bit-for-bit, and the serve
// integration restores checkpoint + tail into an identical alert stream.
// The process-kill side of the story lives in tests/crashsim/.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adapt/controller.hpp"
#include "desh.hpp"
#include "logs/generator.hpp"
#include "util/rng.hpp"
#include "wal/checkpoint.hpp"
#include "wal/codec.hpp"
#include "wal/wal.hpp"

namespace desh::wal {
namespace {

namespace fs = std::filesystem;

using core::DeshPipeline;
using core::ErrorCode;
using core::Expected;
using core::MonitorAlert;
using core::StreamingMonitor;

/// Seeded arbitrary LogRecord: timestamps spanning magnitudes, node ids
/// across the full field ranges, messages from empty to multi-KiB with
/// arbitrary (including NUL) bytes.
logs::LogRecord arbitrary_record(util::Rng& rng) {
  logs::LogRecord r;
  r.timestamp = rng.uniform(-1e9, 1e9);
  r.node.cabinet_x = static_cast<std::uint16_t>(rng.uniform_index(1u << 16));
  r.node.cabinet_y = static_cast<std::uint16_t>(rng.uniform_index(1u << 16));
  r.node.chassis = static_cast<std::uint8_t>(rng.uniform_index(256));
  r.node.slot = static_cast<std::uint8_t>(rng.uniform_index(256));
  r.node.node = static_cast<std::uint8_t>(rng.uniform_index(256));
  const std::size_t len = rng.uniform_index(4096);
  r.message.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    r.message.push_back(static_cast<char>(rng.uniform_index(256)));
  return r;
}

// --- codec ----------------------------------------------------------------

TEST(WalCodec, Crc32MatchesTheIeeeCheckValue) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("desh"), crc32("Desh"));
}

TEST(WalCodec, FrameRoundTripsArbitraryRecords) {
  util::Rng rng(0xDE5D0001);
  for (int i = 0; i < 200; ++i) {
    const logs::LogRecord in = arbitrary_record(rng);
    const std::uint64_t seq = rng.next_u64();
    std::string bytes;
    encode_frame(seq, in, bytes);
    const DecodeResult out = decode_frame(bytes);
    ASSERT_EQ(out.status, DecodeStatus::kOk);
    EXPECT_EQ(out.consumed, bytes.size());
    EXPECT_EQ(out.frame.seq, seq);
    // Bit-exact: the f64 travels as its u64 bit image.
    EXPECT_EQ(out.frame.record.timestamp, in.timestamp);
    EXPECT_EQ(out.frame.record.node, in.node);
    EXPECT_EQ(out.frame.record.message, in.message);
  }
}

TEST(WalCodec, ConcatenatedFramesDecodeInSequence) {
  util::Rng rng(0xDE5D0002);
  std::vector<logs::LogRecord> records;
  std::string bytes;
  for (std::uint64_t seq = 1; seq <= 32; ++seq) {
    records.push_back(arbitrary_record(rng));
    encode_frame(seq, records.back(), bytes);
  }
  std::size_t offset = 0;
  for (std::uint64_t seq = 1; seq <= 32; ++seq) {
    const DecodeResult out =
        decode_frame(std::string_view(bytes).substr(offset));
    ASSERT_EQ(out.status, DecodeStatus::kOk);
    EXPECT_EQ(out.frame.seq, seq);
    EXPECT_EQ(out.frame.record.message, records[seq - 1].message);
    offset += out.consumed;
  }
  EXPECT_EQ(offset, bytes.size());
}

// The decoder's totality contract: ANY byte mutation of a valid frame —
// bit flips, truncations, random garbage — yields a DecodeResult, never a
// crash, and a flip inside the protected region never decodes as kOk.
TEST(WalCodec, DecodeNeverCrashesOnMutatedFrames) {
  util::Rng rng(0xDE5D0003);
  for (int round = 0; round < 50; ++round) {
    std::string frame;
    encode_frame(rng.next_u64(), arbitrary_record(rng), frame);

    // Single-bit flips: the CRC (over the payload) or the prefix sanity
    // checks must reject every one.
    for (int i = 0; i < 40; ++i) {
      std::string mutated = frame;
      const std::size_t at = rng.uniform_index(mutated.size());
      mutated[at] = static_cast<char>(
          mutated[at] ^ static_cast<char>(1u << rng.uniform_index(8)));
      const DecodeResult out = decode_frame(mutated);
      EXPECT_NE(out.status, DecodeStatus::kOk)
          << "bit flip at byte " << at << " decoded as a valid frame";
    }

    // Truncations at every boundary the prefix can claim.
    for (int i = 0; i < 20; ++i) {
      const std::size_t cut = rng.uniform_index(frame.size());
      const DecodeResult out =
          decode_frame(std::string_view(frame).substr(0, cut));
      EXPECT_NE(out.status, DecodeStatus::kOk);
    }

    // Random garbage buffers (including empty).
    std::string garbage;
    const std::size_t len = rng.uniform_index(64);
    for (std::size_t i = 0; i < len; ++i)
      garbage.push_back(static_cast<char>(rng.uniform_index(256)));
    const DecodeResult out = decode_frame(garbage);
    EXPECT_NE(out.status, DecodeStatus::kOk);
  }
}

TEST(WalCodec, DecodeRejectsOversizedLengthAsCorrupt) {
  std::string bytes;
  put_u32(bytes, kMaxFramePayload + 1);  // impossible length prefix
  put_u32(bytes, 0);
  bytes.append(16, 'x');
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::kCorrupt);
}

TEST(WalCodec, DecodeRejectsUnknownFrameType) {
  logs::LogRecord r;
  r.message = "ok";
  std::string bytes;
  encode_frame(7, r, bytes);
  // Rewrite the type tag (first payload byte, at offset 8) and fix up the
  // CRC so only the tag is wrong.
  std::string payload = bytes.substr(8);
  payload[0] = static_cast<char>(0xEE);
  std::string forged;
  put_u32(forged, static_cast<std::uint32_t>(payload.size()));
  put_u32(forged, crc32(payload));
  forged += payload;
  EXPECT_EQ(decode_frame(forged).status, DecodeStatus::kCorrupt);
}

// --- checkpoints ----------------------------------------------------------

class WalDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("desh_wal_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(WalDirTest, CheckpointRoundTripsThroughDisk) {
  CheckpointData data;
  data.seq = 12345;
  data.sections.emplace_back("monitor", std::string("blob\0with nul", 13));
  data.sections.emplace_back("adapt", "");
  ASSERT_TRUE(write_checkpoint(dir_, data).ok());
  EXPECT_TRUE(fs::exists(dir_ / "ckpt-00000000000000012345.ckpt"));

  const Expected<CheckpointData> back =
      read_checkpoint(dir_ / "ckpt-00000000000000012345.ckpt");
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value().seq, 12345u);
  ASSERT_EQ(back.value().sections.size(), 2u);
  ASSERT_NE(back.value().find("monitor"), nullptr);
  EXPECT_EQ(*back.value().find("monitor"), std::string("blob\0with nul", 13));
  ASSERT_NE(back.value().find("adapt"), nullptr);
  EXPECT_EQ(back.value().find("missing"), nullptr);
}

TEST_F(WalDirTest, CorruptCheckpointBytesAreRejectedNotTrusted) {
  CheckpointData data;
  data.seq = 9;
  data.sections.emplace_back("monitor", "state");
  const std::string good = encode_checkpoint(data);
  ASSERT_TRUE(decode_checkpoint(good).ok());

  util::Rng rng(0xDE5D0004);
  for (int i = 0; i < 64; ++i) {  // bit flips anywhere, incl. the trailer
    std::string bad = good;
    const std::size_t at = rng.uniform_index(bad.size());
    bad[at] = static_cast<char>(
        bad[at] ^ static_cast<char>(1u << rng.uniform_index(8)));
    const Expected<CheckpointData> out = decode_checkpoint(bad);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.error().code, ErrorCode::kFormatVersion);
  }
  for (std::size_t cut = 0; cut < good.size(); ++cut)
    EXPECT_FALSE(decode_checkpoint(std::string_view(good).substr(0, cut))
                     .ok());
}

TEST_F(WalDirTest, LoadLatestFallsBackPastCorruptAndVetoedFiles) {
  for (const std::uint64_t seq : {5u, 9u, 13u}) {
    CheckpointData data;
    data.seq = seq;
    data.sections.emplace_back("tag", std::to_string(seq));
    ASSERT_TRUE(write_checkpoint(dir_, data).ok());
  }
  // Corrupt the newest on disk.
  {
    std::ofstream os(dir_ / "ckpt-00000000000000000013.ckpt",
                     std::ios::binary | std::ios::trunc);
    os << "not a checkpoint";
  }
  // Veto seq 9: the loader must land on 5.
  const Expected<CheckpointData> picked = load_latest_checkpoint(
      dir_, [](const CheckpointData& c) { return c.seq != 9; });
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(picked.value().seq, 5u);

  // Veto everything: recovery starts empty at seq 0.
  const Expected<CheckpointData> none = load_latest_checkpoint(
      dir_, [](const CheckpointData&) { return false; });
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().seq, 0u);
  EXPECT_TRUE(none.value().sections.empty());
}

TEST_F(WalDirTest, GcKeepsNewestCheckpointsAndSweepsTmpOrphans) {
  for (const std::uint64_t seq : {2u, 4u, 6u, 8u}) {
    CheckpointData data;
    data.seq = seq;
    ASSERT_TRUE(write_checkpoint(dir_, data).ok());
  }
  {  // a crashed write-then-rename leaves a .tmp orphan behind
    std::ofstream os(dir_ / "ckpt-00000000000000000099.ckpt.tmp");
    os << "torn";
  }
  EXPECT_EQ(gc_checkpoints(dir_, 2), 6u);
  const auto left = list_checkpoints(dir_);
  ASSERT_EQ(left.size(), 2u);
  EXPECT_EQ(left[0].first, 6u);
  EXPECT_EQ(left[1].first, 8u);
  for (const auto& entry : fs::directory_iterator(dir_))
    EXPECT_NE(entry.path().extension(), ".tmp");
}

// --- DurableLog recovery --------------------------------------------------

logs::LogRecord simple_record(std::uint64_t i) {
  logs::LogRecord r;
  r.timestamp = static_cast<double>(i) * 0.25;
  r.node.cabinet_x = 1;
  r.node.node = static_cast<std::uint8_t>(i % 4);
  r.message = "event " + std::to_string(i);
  return r;
}

TEST_F(WalDirTest, AppendFlushReopenReplaysEverythingInOrder) {
  LogOptions options;
  options.directory = dir_;
  options.flush_every_records = 4;
  {
    Expected<std::unique_ptr<DurableLog>> log =
        DurableLog::open(options, nullptr);
    ASSERT_TRUE(log.ok()) << log.error().message;
    DurableLog& wal = *log.value();
    EXPECT_EQ(wal.recovered().last_seq, 0u);
    for (std::uint64_t i = 1; i <= 10; ++i) {
      EXPECT_EQ(wal.append(simple_record(i)), i);
      const Expected<bool> flushed = wal.maybe_flush();
      ASSERT_TRUE(flushed.ok());
      // Group commit: a flush happens exactly every 4th append.
      EXPECT_EQ(flushed.value(), i % 4 == 0);
    }
    EXPECT_EQ(wal.committed_seq(), 8u);
    EXPECT_EQ(wal.pending_records(), 2u);
    // Destructor best-effort-flushes the pending tail.
  }
  Expected<std::unique_ptr<DurableLog>> reopened =
      DurableLog::open(options, nullptr);
  ASSERT_TRUE(reopened.ok());
  const RecoveredState& recovered = reopened.value()->recovered();
  EXPECT_EQ(recovered.checkpoint_seq, 0u);
  EXPECT_EQ(recovered.last_seq, 10u);
  EXPECT_EQ(recovered.torn_frames, 0u);
  ASSERT_EQ(recovered.tail.size(), 10u);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    EXPECT_EQ(recovered.tail[i - 1].seq, i);
    EXPECT_EQ(recovered.tail[i - 1].record.message,
              "event " + std::to_string(i));
  }
  EXPECT_EQ(reopened.value()->next_seq(), 11u);
}

TEST_F(WalDirTest, TornTailIsTruncatedAndTheLogStaysAppendable) {
  LogOptions options;
  options.directory = dir_;
  options.flush_every_records = 1;
  {
    auto log = DurableLog::open(options, nullptr);
    ASSERT_TRUE(log.ok());
    for (std::uint64_t i = 1; i <= 6; ++i) {
      log.value()->append(simple_record(i));
      ASSERT_TRUE(log.value()->flush().ok());
    }
  }
  // Tear the last frame: chop 3 bytes off the segment, as a mid-write
  // death would.
  const auto segment = dir_ / "wal-00000000000000000001.log";
  ASSERT_TRUE(fs::exists(segment));
  fs::resize_file(segment, fs::file_size(segment) - 3);

  {
    auto reopened = DurableLog::open(options, nullptr);
    ASSERT_TRUE(reopened.ok());
    const RecoveredState& recovered = reopened.value()->recovered();
    EXPECT_EQ(recovered.last_seq, 5u);
    EXPECT_EQ(recovered.tail.size(), 5u);
    EXPECT_GE(recovered.torn_frames, 1u);
    // Seq stays contiguous: the torn record's number is reassigned.
    EXPECT_EQ(reopened.value()->append(simple_record(6)), 6u);
    ASSERT_TRUE(reopened.value()->flush().ok());
  }
  auto again = DurableLog::open(options, nullptr);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->recovered().last_seq, 6u);
  EXPECT_EQ(again.value()->recovered().torn_frames, 0u);
}

TEST_F(WalDirTest, BitRotInTheTailIsDetectedAndDropped) {
  LogOptions options;
  options.directory = dir_;
  {
    auto log = DurableLog::open(options, nullptr);
    ASSERT_TRUE(log.ok());
    for (std::uint64_t i = 1; i <= 4; ++i)
      log.value()->append(simple_record(i));
    ASSERT_TRUE(log.value()->flush().ok());
  }
  const auto segment = dir_ / "wal-00000000000000000001.log";
  // Flip one bit near the end of the file (inside the last frame).
  const std::uintmax_t size = fs::file_size(segment);
  {
    std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(size - 5));
    char byte = 0;
    f.get(byte);
    f.seekp(static_cast<std::streamoff>(size - 5));
    f.put(static_cast<char>(byte ^ 0x10));
  }
  auto reopened = DurableLog::open(options, nullptr);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->recovered().last_seq, 3u);
  EXPECT_GE(reopened.value()->recovered().torn_frames, 1u);
}

TEST_F(WalDirTest, CheckpointRotatesSegmentsAndGcsCoveredOnes) {
  LogOptions options;
  options.directory = dir_;
  options.keep_checkpoints = 1;
  {
    auto log = DurableLog::open(options, nullptr);
    ASSERT_TRUE(log.ok());
    DurableLog& wal = *log.value();
    for (std::uint64_t i = 1; i <= 5; ++i) wal.append(simple_record(i));
    ASSERT_TRUE(wal.write_checkpoint_and_rotate(
                       {{"tag", "first"}})
                    .ok());
    EXPECT_EQ(wal.last_checkpoint_seq(), 5u);
    for (std::uint64_t i = 6; i <= 8; ++i) wal.append(simple_record(i));
    ASSERT_TRUE(wal.write_checkpoint_and_rotate(
                       {{"tag", "second"}})
                    .ok());
    EXPECT_EQ(wal.last_checkpoint_seq(), 8u);
    for (std::uint64_t i = 9; i <= 9; ++i) wal.append(simple_record(i));
    ASSERT_TRUE(wal.flush().ok());
    EXPECT_EQ(wal.counters().checkpoints, 2u);
  }
  // keep_checkpoints=1: only the seq-8 checkpoint and the segments after
  // it survive.
  EXPECT_EQ(list_checkpoints(dir_).size(), 1u);
  auto reopened = DurableLog::open(options, nullptr);
  ASSERT_TRUE(reopened.ok());
  const RecoveredState& recovered = reopened.value()->recovered();
  EXPECT_EQ(recovered.checkpoint_seq, 8u);
  EXPECT_EQ(recovered.last_seq, 9u);
  ASSERT_EQ(recovered.tail.size(), 1u);  // only (8, 9] replays
  EXPECT_EQ(recovered.tail[0].seq, 9u);
  ASSERT_NE(recovered.checkpoint.find("tag"), nullptr);
  EXPECT_EQ(*recovered.checkpoint.find("tag"), "second");
}

TEST_F(WalDirTest, OpenRejectsAnEmptyDirectoryPath) {
  const Expected<std::unique_ptr<DurableLog>> log =
      DurableLog::open(LogOptions{}, nullptr);
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.error().code, ErrorCode::kInvalidArgument);
}

// --- monitor + serve integration -----------------------------------------

class WalServeTest : public WalDirTest {
 protected:
  static void SetUpTestSuite() {
    logs::SyntheticCraySource source(logs::profile_tiny(2024));
    logs::SyntheticLog log = source.generate();
    auto [train, test] =
        core::split_corpus(log.records, log.truth.split_time);
    test_ = new logs::LogCorpus(std::move(test));
    core::DeshConfig config;
    config.phase1.epochs = 1;
    auto fitted = std::make_shared<DeshPipeline>(config);
    fitted->fit(train);
    shared_ = new std::shared_ptr<const DeshPipeline>(std::move(fitted));
    pipeline_ = shared_->get();
  }
  static void TearDownTestSuite() {
    delete shared_;
    pipeline_ = nullptr;
    delete test_;
  }

  static std::vector<MonitorAlert> sequential_alerts(
      const logs::LogCorpus& records, StreamingMonitor& monitor) {
    std::vector<MonitorAlert> alerts;
    for (const logs::LogRecord& record : records)
      if (auto alert = monitor.observe(record))
        alerts.push_back(std::move(*alert));
    return alerts;
  }

  static void expect_same_alerts(const std::vector<MonitorAlert>& expected,
                                 const std::vector<MonitorAlert>& actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].node, actual[i].node);
      EXPECT_EQ(expected[i].time, actual[i].time);
      EXPECT_EQ(expected[i].score, actual[i].score);
      EXPECT_EQ(expected[i].predicted_lead_seconds,
                actual[i].predicted_lead_seconds);
      EXPECT_EQ(expected[i].message, actual[i].message);
    }
  }

  static logs::LogCorpus* test_;
  static std::shared_ptr<const DeshPipeline>* shared_;  // co-ownable handle
  static const DeshPipeline* pipeline_;
};

logs::LogCorpus* WalServeTest::test_ = nullptr;
std::shared_ptr<const DeshPipeline>* WalServeTest::shared_ = nullptr;
const DeshPipeline* WalServeTest::pipeline_ = nullptr;

TEST_F(WalServeTest, MonitorStateBlobReproducesDecisionsBitForBit) {
  const std::size_t half = test_->size() / 2;
  const logs::LogCorpus part1(test_->begin(), test_->begin() + half);
  const logs::LogCorpus part2(test_->begin() + half, test_->end());

  StreamingMonitor golden(*pipeline_);
  std::vector<MonitorAlert> golden1 = sequential_alerts(part1, golden);
  const std::string blob = golden.serialize_state();

  StreamingMonitor restored(*pipeline_);
  const Expected<void> ok = restored.restore_state(blob);
  ASSERT_TRUE(ok.ok()) << ok.error().message;
  // The restored monitor must finish the stream EXACTLY like the
  // uninterrupted one — same alerts, same bits.
  expect_same_alerts(sequential_alerts(part2, golden),
                     sequential_alerts(part2, restored));

  // And the blob is deterministic: re-serializing the restored state
  // yields the same bytes (sorted node order, bit-image floats).
  StreamingMonitor reserialized(*pipeline_);
  ASSERT_TRUE(reserialized.restore_state(blob).ok());
  EXPECT_EQ(reserialized.serialize_state(), blob);
}

TEST_F(WalServeTest, MonitorRejectsBlobsFromADifferentModel) {
  StreamingMonitor monitor(*pipeline_);
  for (std::size_t i = 0; i < 16 && i < test_->size(); ++i)
    monitor.observe((*test_)[i]);
  std::string blob = monitor.serialize_state();
  // Forge the embedded vocab size (u64 right after the 8-byte magic).
  blob[8] = static_cast<char>(blob[8] ^ 0x01);
  const Expected<void> rejected = monitor.restore_state(blob);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kFormatVersion);

  const Expected<void> garbage = monitor.restore_state("not a blob");
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.error().code, ErrorCode::kFormatVersion);
}

TEST_F(WalServeTest, ServerRestartReplaysTheFullDecisionStream) {
  serve::ServeConfig config;
  config.queue_capacity = test_->size();
  config.start_collector = false;
  config.wal.directory = dir_.string();
  config.wal.flush_every_records = 32;
  config.wal.checkpoint_every_records = 0;  // no checkpoints: full replay

  std::vector<MonitorAlert> golden;
  {
    StreamingMonitor monitor(*pipeline_);
    golden = sequential_alerts(*test_, monitor);
    ASSERT_FALSE(golden.empty());
  }
  {
    auto server = serve::InferenceServer::create(*pipeline_, config);
    ASSERT_TRUE(server.ok()) << server.error().message;
    EXPECT_EQ(server.value()->submit_batch(*test_), test_->size());
    server.value()->drain();
    server.value()->stop();  // flushes the WAL tail
    expect_same_alerts(golden, server.value()->poll_alerts());
    const serve::InferenceServer::WalStats stats =
        server.value()->wal_stats();
    EXPECT_TRUE(stats.enabled);
    EXPECT_EQ(stats.appended, test_->size());
    EXPECT_EQ(stats.committed_seq, test_->size());
    EXPECT_EQ(stats.io_errors, 0u);
    EXPECT_GT(stats.flushes, 0u);
  }
  // Restart: every logged record replays through the same observe path and
  // the pre-crash alert stream comes back byte-for-byte.
  auto restarted = serve::InferenceServer::create(*pipeline_, config);
  ASSERT_TRUE(restarted.ok()) << restarted.error().message;
  const serve::InferenceServer::WalStats stats =
      restarted.value()->wal_stats();
  EXPECT_EQ(stats.checkpoint_seq, 0u);
  EXPECT_EQ(stats.replayed, test_->size());
  std::vector<MonitorAlert> replayed;
  for (const auto& [seq, alert] : restarted.value()->wal_replayed_alerts()) {
    EXPECT_GE(seq, 1u);
    EXPECT_LE(seq, static_cast<std::uint64_t>(test_->size()));
    replayed.push_back(alert);
  }
  expect_same_alerts(golden, replayed);
  // Replayed alerts are NOT re-queued for poll_alerts.
  EXPECT_TRUE(restarted.value()->poll_alerts().empty());
}

TEST_F(WalServeTest, CheckpointRestoreContinuesTheStreamSeamlessly) {
  const std::size_t half = test_->size() / 2;
  const logs::LogCorpus part1(test_->begin(), test_->begin() + half);
  const logs::LogCorpus part2(test_->begin() + half, test_->end());

  StreamingMonitor golden_monitor(*pipeline_);
  sequential_alerts(part1, golden_monitor);
  const std::vector<MonitorAlert> golden2 =
      sequential_alerts(part2, golden_monitor);

  serve::ServeConfig config;
  config.queue_capacity = test_->size();
  config.start_collector = false;
  config.wal.directory = dir_.string();
  config.wal.checkpoint_every_records = 0;
  {
    auto server = serve::InferenceServer::create(*pipeline_, config);
    ASSERT_TRUE(server.ok());
    EXPECT_EQ(server.value()->submit_batch(part1), part1.size());
    server.value()->drain();
    const Expected<void> ckpt = server.value()->wal_checkpoint_now();
    ASSERT_TRUE(ckpt.ok()) << ckpt.error().message;
    EXPECT_EQ(server.value()->wal_stats().checkpoints, 1u);
    server.value()->stop();
  }
  // Restart lands on the checkpoint: nothing to replay, and the restored
  // monitor state carries every per-node window across the restart.
  auto restarted = serve::InferenceServer::create(*pipeline_, config);
  ASSERT_TRUE(restarted.ok()) << restarted.error().message;
  const serve::InferenceServer::WalStats stats =
      restarted.value()->wal_stats();
  EXPECT_EQ(stats.checkpoint_seq, part1.size());
  EXPECT_EQ(stats.replayed, 0u);
  EXPECT_TRUE(restarted.value()->wal_replayed_alerts().empty());

  EXPECT_EQ(restarted.value()->submit_batch(part2), part2.size());
  restarted.value()->drain();
  restarted.value()->stop();
  expect_same_alerts(golden2, restarted.value()->poll_alerts());
}

TEST_F(WalServeTest, WalConfigViolationsSurfaceWithFieldPaths) {
  serve::ServeConfig config;
  config.wal.directory = dir_.string();
  config.wal.flush_every_records = 0;
  config.wal.keep_checkpoints = 0;
  const auto server = serve::InferenceServer::create(*pipeline_, config);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.error().code, ErrorCode::kInvalidConfig);
  EXPECT_NE(server.error().message.find("serve.wal.flush_every_records"),
            std::string::npos);
  EXPECT_NE(server.error().message.find("serve.wal.keep_checkpoints"),
            std::string::npos);

  // An empty directory means "disabled" — the other fields are ignored.
  core::WalConfig off;
  off.flush_every_records = 0;
  EXPECT_TRUE(off.validate().empty());
}

TEST_F(WalServeTest, WalDisabledServersReportSoAndRefuseCheckpoints) {
  serve::ServeConfig config;
  config.start_collector = false;
  auto server = serve::InferenceServer::create(*pipeline_, config);
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(server.value()->wal_stats().enabled);
  EXPECT_FALSE(server.value()->wal_restored_state("monitor").has_value());
  const Expected<void> ckpt = server.value()->wal_checkpoint_now();
  ASSERT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt.error().code, ErrorCode::kUnavailable);
}

// --- adapt state hook -----------------------------------------------------

TEST_F(WalServeTest, AdaptStateBlobRoundTripsAndNamesTheChampion) {
  const std::shared_ptr<const DeshPipeline> champion = *shared_;
  adapt::AdaptOptions options;
  options.registry_root = (dir_ / "registry_a").string();
  options.trainer.phase1.epochs = 1;
  options.trainer.threads = 1;
  options.config.background = false;
  auto a = adapt::AdaptController::create(champion, options);
  ASSERT_TRUE(a.ok()) << a.error().message;
  const std::size_t n = std::min<std::size_t>(test_->size(), 64);
  a.value()->on_batch(std::span(test_->data(), n), {});
  const std::string blob = a.value()->serialize_state();

  // The blob names the champion's registry version — the handle an app
  // uses to reload the right model before reconstructing the loop.
  const std::optional<std::uint32_t> version =
      adapt::AdaptController::checkpoint_champion_version(blob);
  ASSERT_TRUE(version.has_value());
  EXPECT_EQ(*version, 1u);
  EXPECT_FALSE(
      adapt::AdaptController::checkpoint_champion_version("junk").has_value());

  options.registry_root = (dir_ / "registry_b").string();
  auto b = adapt::AdaptController::create(champion, options);
  ASSERT_TRUE(b.ok());
  const Expected<void> restored = b.value()->restore_state(blob);
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  // Round trip: the restored replay buffer re-serializes to the same bytes.
  EXPECT_EQ(b.value()->serialize_state(), blob);

  const Expected<void> rejected = b.value()->restore_state("DESHWRONG");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kFormatVersion);
  a.value()->stop();
  b.value()->stop();
}

}  // namespace
}  // namespace desh::wal
