// desh_analyze — cross-TU lock-order, layering, and blocking-under-lock
// analysis for the desh tree, checked against the architecture contracts in
// tools/analyze/lock_order.contract and tools/analyze/layers.contract.
//
//   desh_analyze [--root <repo>] [--json] [--dot <dir>] [--rules]
//
// Exit 0: clean (waived findings allowed), 1: findings, 2: usage or
// contract-file error. `--json` emits {"findings", "lock_order", "layers"};
// `--dot <dir>` additionally writes lock_order.dot and layers.dot.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "finding.hpp"
#include "model.hpp"
#include "passes.hpp"
#include "source.hpp"

namespace {

using namespace desh::analyze;

// Every rule desh_analyze can emit; the docs check pins each name to a
// DESIGN.md mention.
constexpr const char* kRuleNames[] = {
    "lock-order",
    "layering",
    "blocking-under-lock",
    "unresolved-lock",
};

void write_edges_json(std::ostream& os, const std::vector<GraphEdge>& edges) {
  os << "[";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const GraphEdge& e = edges[i];
    if (i) os << ", ";
    os << "{\"from\": \"" << json_escape(e.from) << "\", \"to\": \""
       << json_escape(e.to) << "\", \"file\": \"" << json_escape(e.file)
       << "\", \"line\": " << e.line << ", \"via\": \"" << json_escape(e.via)
       << "\"}";
  }
  os << "]";
}

void write_json(std::ostream& os, const AnalysisResult& result) {
  os << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    write_finding_json(os, result.findings[i]);
  }
  os << (result.findings.empty() ? "]" : "\n  ]");
  os << ",\n  \"lock_order\": {\"nodes\": [";
  for (std::size_t i = 0; i < result.lock_nodes.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json_escape(result.lock_nodes[i]) << "\"";
  }
  os << "], \"edges\": ";
  write_edges_json(os, result.lock_edges);
  os << "},\n  \"layers\": {\"edges\": ";
  write_edges_json(os, result.layer_edges);
  os << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  std::filesystem::path dot_dir;
  bool json = false;
  bool dot = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--dot" && i + 1 < argc) {
      dot = true;
      dot_dir = argv[++i];
    } else if (arg == "--rules") {
      for (const char* rule : kRuleNames) std::cout << rule << "\n";
      return 0;
    } else {
      std::cerr << "usage: desh_analyze [--root <repo>] [--json] "
                   "[--dot <dir>] [--rules]\n";
      return 2;
    }
  }

  std::vector<SourceFile> files;
  if (!load_tree(root, "src", "desh_analyze", files)) return 2;

  LockOrderContract locks;
  LayersContract layers;
  std::string error;
  if (!parse_lock_order_contract(root / "tools/analyze/lock_order.contract",
                                 locks, error) ||
      !parse_layers_contract(root / "tools/analyze/layers.contract", layers,
                             error)) {
    std::cerr << "desh_analyze: " << error << "\n";
    return 2;
  }

  const Model model = build_model(files);
  const AnalysisResult result = run_analysis(model, files, locks, layers);

  if (dot) {
    std::error_code ec;
    std::filesystem::create_directories(dot_dir, ec);
    std::ofstream lock_os(dot_dir / "lock_order.dot");
    std::ofstream layer_os(dot_dir / "layers.dot");
    if (!lock_os || !layer_os) {
      std::cerr << "desh_analyze: cannot write DOT files under " << dot_dir
                << "\n";
      return 2;
    }
    write_lock_dot(lock_os, result, locks);
    write_layers_dot(layer_os, result, layers);
  }

  std::size_t active = 0;
  for (const Finding& f : result.findings)
    if (!f.waived) ++active;

  if (json) {
    write_json(std::cout, result);
  } else {
    for (const Finding& f : result.findings)
      write_finding_text(std::cout, f);
    std::cout << "desh_analyze: " << result.findings.size() << " finding(s), "
              << active << " active, " << result.lock_edges.size()
              << " lock edge(s), " << result.layer_edges.size()
              << " layer edge(s)\n";
  }
  return active ? 1 : 0;
}
