// The finding schema shared by desh_lint and desh_analyze: both tools'
// `--json` output is an array of objects with the same five-plus-one field
// layout (rule, file, line, severity, waived, message), so CI tooling can
// merge the two reports without per-tool parsing. Sorting and escaping live
// here for the same reason — one definition of "stable output order".
#pragma once

#include <algorithm>
#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace desh::analyze {

struct Finding {
  std::string rule;
  std::string file;  // repo-relative, '/'-separated
  std::size_t line = 0;
  std::string severity = "error";  // "error" | "warning"
  bool waived = false;  // reported for visibility, excluded from exit code
  std::string message;
};

inline void sort_findings(std::vector<Finding>& findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Emits one finding object in the common schema (stable field order: rule,
/// file, line, severity, waived, message). No trailing newline or comma —
/// the caller owns array framing.
inline void write_finding_json(std::ostream& os, const Finding& f) {
  os << "{\"rule\": \"" << json_escape(f.rule) << "\", \"file\": \""
     << json_escape(f.file) << "\", \"line\": " << f.line
     << ", \"severity\": \"" << json_escape(f.severity)
     << "\", \"waived\": " << (f.waived ? "true" : "false")
     << ", \"message\": \"" << json_escape(f.message) << "\"}";
}

/// The default human-readable rendering: `file:line: [rule] message`, with
/// waived findings tagged so a clean run's waiver inventory stays visible.
inline void write_finding_text(std::ostream& os, const Finding& f) {
  os << f.file << ":" << f.line << ": [" << f.rule << "] "
     << (f.waived ? "(waived) " : "") << f.message << "\n";
}

}  // namespace desh::analyze
