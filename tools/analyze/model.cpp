#include "model.hpp"

#include <algorithm>
#include <cctype>

namespace desh::analyze {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool in(const std::string& s, std::initializer_list<const char*> set) {
  for (const char* x : set)
    if (s == x) return true;
  return false;
}

/// Control keywords and cast spellings that look like calls but are not.
bool call_keyword(const std::string& t) {
  return in(t, {"if", "for", "while", "switch", "return", "sizeof", "catch",
                "new", "delete", "throw", "static_cast", "dynamic_cast",
                "const_cast", "reinterpret_cast", "alignof", "decltype",
                "noexcept", "assert", "defined", "co_await", "co_return"});
}

/// Identifier tokens that never contribute to a declared type's identity.
bool type_noise(const std::string& t) {
  return in(t, {"static", "inline", "virtual", "explicit", "constexpr",
                "consteval", "constinit", "const", "mutable", "volatile",
                "friend", "typename", "template", "class", "struct", "union",
                "auto", "void", "unsigned", "signed", "long", "short", "int",
                "double", "float", "bool", "char", "size_t", "uint64_t",
                "uint32_t", "int64_t", "int32_t", "uint8_t", "extern",
                "using", "operator", "noexcept", "override", "final"});
}

/// std-container member names whose unresolved fan-out would only add noise
/// (they collide with method names on vectors/maps/smart pointers, never
/// with a desh class's locking surface).
bool member_noise(const std::string& t) {
  return in(t, {"push_back", "emplace_back", "pop_back",  "size",
                "empty",     "begin",        "end",       "cbegin",
                "cend",      "rbegin",       "rend",      "clear",
                "insert",    "erase",        "at",        "front",
                "back",      "data",         "c_str",     "str",
                "reserve",   "resize",       "substr",    "append",
                "get",       "release",      "load",      "store",
                "exchange",  "fetch_add",    "fetch_sub", "value",
                "error",     "has_value",    "value_or",  "emplace",
                "swap",      "count",        "find",      "contains",
                "lower_bound", "upper_bound", "push",     "pop",
                "top",       "first",        "second",    "tie",
                "fill",      "assign",       "try_emplace", "joinable",
                "detach",    "native_handle", "notify_one", "notify_all",
                "compare_exchange_strong", "compare_exchange_weak",
                "insert_or_assign", "length", "rfind", "compare"});
}

bool fs_io_op(const std::string& t) {
  return in(t, {"exists", "create_directory", "create_directories", "remove",
                "remove_all", "rename", "copy", "copy_file", "file_size",
                "temp_directory_path", "canonical", "weakly_canonical",
                "is_directory", "is_regular_file", "directory_iterator",
                "recursive_directory_iterator", "last_write_time",
                "resize_file", "current_path", "space", "status",
                "hard_link_count", "equivalent"});
}

bool all_caps_macro(const std::string& t) {
  if (t.rfind("DESH_", 0) == 0) return true;
  bool has_alpha = false;
  for (char c : t) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isalpha(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

struct Token {
  std::string text;
  std::size_t line = 0;
};

struct TokenFile {
  const SourceFile* src = nullptr;
  std::vector<Token> toks;
  std::vector<Include> includes;
};

/// Tokenizes the scrubbed code of one file. Preprocessor lines are consumed
/// whole: `#include "..."` paths are captured, and the #else/#elif branch
/// of every conditional is dropped so each class/function is seen exactly
/// once (the #if branch is the configuration the tree builds with).
void tokenize(const SourceFile& f, TokenFile& out) {
  out.src = &f;
  bool skipping = false;
  int skip_nest = 0;
  std::vector<char> if_stack;
  for (std::size_t idx = 0; idx < f.lines.size(); ++idx) {
    const std::string& code = f.lines[idx].code;
    const std::size_t first = code.find_first_not_of(" \t");
    if (first != std::string::npos && code[first] == '#') {
      std::size_t d = code.find_first_not_of(" \t", first + 1);
      std::string word;
      while (d != std::string::npos && d < code.size() &&
             std::isalpha(static_cast<unsigned char>(code[d])))
        word += code[d++];
      if (skipping) {
        if (word == "if" || word == "ifdef" || word == "ifndef") {
          ++skip_nest;
        } else if (word == "endif") {
          if (skip_nest > 0) {
            --skip_nest;
          } else {
            skipping = false;
            if (!if_stack.empty()) if_stack.pop_back();
          }
        }
      } else {
        if (word == "if" || word == "ifdef" || word == "ifndef") {
          if_stack.push_back(1);
        } else if ((word == "else" || word == "elif") && !if_stack.empty()) {
          skipping = true;
          skip_nest = 0;
        } else if (word == "endif") {
          if (!if_stack.empty()) if_stack.pop_back();
        } else if (word == "include" && !f.lines[idx].strings.empty()) {
          out.includes.push_back({f.lines[idx].strings[0], idx + 1});
        }
      }
      continue;
    }
    if (skipping) continue;
    for (std::size_t p = 0; p < code.size();) {
      const char c = code[p];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++p;
      } else if (is_ident_start(c)) {
        std::size_t e = p;
        while (e < code.size() && is_ident_char(code[e])) ++e;
        out.toks.push_back({code.substr(p, e - p), idx + 1});
        p = e;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t e = p;
        while (e < code.size() &&
               (is_ident_char(code[e]) || code[e] == '.' || code[e] == '\''))
          ++e;
        out.toks.push_back({code.substr(p, e - p), idx + 1});
        p = e;
      } else if (c == '"' || c == '\'') {
        // Scrubbed literals are an adjacent quote pair.
        out.toks.push_back({std::string(2, c), idx + 1});
        p += (p + 1 < code.size() && code[p + 1] == c) ? 2 : 1;
      } else if (c == ':' && p + 1 < code.size() && code[p + 1] == ':') {
        out.toks.push_back({"::", idx + 1});
        p += 2;
      } else if (c == '-' && p + 1 < code.size() && code[p + 1] == '>') {
        out.toks.push_back({"->", idx + 1});
        p += 2;
      } else {
        out.toks.push_back({std::string(1, c), idx + 1});
        ++p;
      }
    }
  }
}

std::string file_base(const std::string& rel_path) {
  const std::size_t slash = rel_path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? rel_path : rel_path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos) base.resize(dot);
  return base;
}

class Extractor {
 public:
  explicit Extractor(const std::vector<SourceFile>& files) {
    for (const SourceFile& f : files) {
      if (excluded_from_model(f.rel_path)) continue;
      TokenFile tf;
      tokenize(f, tf);
      model_.includes[f.rel_path] = tf.includes;
      token_files_.push_back(std::move(tf));
    }
  }

  Model build() {
    // Two declaration rounds (so out-of-class definitions scanned before
    // their class's header still bind — file order is alphabetical, which
    // puts .cpp before .hpp), then one body round with the full inventory.
    for (round_ = 0; round_ < 3; ++round_) {
      phase_ = round_ < 2 ? 0 : 1;
      for (TokenFile& tf : token_files_) scan_file(tf);
    }
    for (std::size_t i = 0; i < model_.functions.size(); ++i) {
      const Function& fn = model_.functions[i];
      if (fn.cls.empty()) {
        model_.free_index[fn.name].push_back(i);
      } else {
        model_.method_index[fn.cls + "::" + fn.name].push_back(i);
        model_.methods_by_name[fn.name].push_back(i);
      }
    }
    sort_findings(model_.findings);
    return std::move(model_);
  }

 private:
  // -- per-file scan ---------------------------------------------------------

  void scan_file(TokenFile& tf) {
    toks_ = &tf.toks;
    i_ = 0;
    file_ = tf.src->rel_path;
    src_ = tf.src;
    sub_ = subsystem_of(file_);
    scan_scope("");
  }

  const Token& tok(std::size_t i) const {
    static const Token kEnd{"", 0};
    return i < toks_->size() ? (*toks_)[i] : kEnd;
  }
  const std::string& text(std::size_t i) const { return tok(i).text; }

  /// Scans one declaration scope until its closing '}' (consumed) or EOF.
  void scan_scope(const std::string& cls) {
    std::vector<Token> pending;
    while (i_ < toks_->size()) {
      const std::string& t = text(i_);
      if (t == "{") {
        ++i_;
        handle_open(pending, cls);
      } else if (t == "}") {
        ++i_;
        return;
      } else if (t == ";") {
        ++i_;
        if (phase_ == 0) process_decl(pending, cls);
        pending.clear();
      } else {
        pending.push_back(tok(i_));
        ++i_;
      }
    }
  }

  /// Index of the first '(' in `pending` outside template angle brackets,
  /// or npos.
  static std::size_t top_paren(const std::vector<Token>& pending) {
    int angle = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const std::string& t = pending[i].text;
      if (t == "<") ++angle;
      else if (t == ">" && angle > 0) --angle;
      else if (t == "(" && angle == 0) return i;
    }
    return std::string::npos;
  }

  /// Index of a class/struct/union keyword outside angle brackets, or npos.
  /// `enum class`/`enum struct` do not count.
  static std::size_t class_kw(const std::vector<Token>& pending) {
    int angle = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const std::string& t = pending[i].text;
      if (t == "<") ++angle;
      else if (t == ">" && angle > 0) --angle;
      else if (angle == 0 && (t == "class" || t == "struct" || t == "union") &&
               (i == 0 || pending[i - 1].text != "enum"))
        return i;
    }
    return std::string::npos;
  }

  static bool has_kw(const std::vector<Token>& pending, const char* kw) {
    for (const Token& t : pending)
      if (t.text == kw) return true;
    return false;
  }

  /// Removes annotation-macro invocations (`DESH_GUARDED_BY(mu_)`,
  /// `DESH_REQUIRES(...)`, ...) so `std::vector<int> q_ DESH_GUARDED_BY(mu_);`
  /// classifies as the member variable it is, not a function named
  /// DESH_GUARDED_BY. Callers wanting the annotations read the original.
  static std::vector<Token> strip_macros(const std::vector<Token>& pending) {
    std::vector<Token> out;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const std::string& t = pending[i].text;
      if (t.rfind("DESH_", 0) == 0) {
        if (i + 1 < pending.size() && pending[i + 1].text == "(") {
          int depth = 0;
          std::size_t j = i + 1;
          for (; j < pending.size(); ++j) {
            if (pending[j].text == "(") ++depth;
            else if (pending[j].text == ")" && --depth == 0) break;
          }
          i = j;
        }
        continue;
      }
      out.push_back(pending[i]);
    }
    return out;
  }

  /// Consumes a balanced brace region whose '{' was already consumed.
  void skip_braces() {
    int depth = 1;
    while (i_ < toks_->size() && depth > 0) {
      const std::string& t = text(i_);
      if (t == "{") ++depth;
      else if (t == "}") --depth;
      ++i_;
    }
  }

  void handle_open(std::vector<Token>& pending, const std::string& cls) {
    const std::vector<Token> clean = strip_macros(pending);
    const std::size_t paren = top_paren(clean);
    const std::size_t ckw = class_kw(clean);

    if (has_kw(pending, "namespace") && paren == std::string::npos) {
      scan_scope(cls);  // namespaces do not change the enclosing class
      pending.clear();
      return;
    }
    if (ckw != std::string::npos &&
        (paren == std::string::npos || ckw < paren) &&
        !has_kw(clean, "operator")) {
      // Class definition. Name = last identifier outside <>/() before the
      // base-clause ':' (if any), skipping `final`.
      std::string name;
      int angle = 0;
      for (std::size_t i = ckw + 1; i < clean.size(); ++i) {
        const std::string& t = clean[i].text;
        if (t == "<") ++angle;
        else if (t == ">" && angle > 0) --angle;
        else if (angle == 0 && t == ":") break;
        else if (angle == 0 && is_ident_start(t[0]) && t != "final" &&
                 t != "alignas")
          name = t;
      }
      if (name.empty()) {
        skip_braces();
      } else {
        if (phase_ == 0 && !model_.classes.count(name)) {
          ClassInfo ci;
          ci.name = name;
          ci.subsystem = sub_;
          ci.file = file_;
          ci.line = clean[ckw].line;
          model_.classes.emplace(name, std::move(ci));
        }
        scan_scope(name);
      }
      pending.clear();
      return;
    }
    if (has_kw(clean, "enum")) {
      skip_braces();  // body is just enumerators; pending survives to ';'
      return;
    }
    if (paren != std::string::npos && !eq_before(clean, paren)) {
      handle_function(clean, pending, cls, paren);
      pending.clear();
      return;
    }
    // Brace-init of a variable, a lambda, or anything else: consume the
    // braces, keep pending so a following ';' still registers the variable.
    skip_braces();
  }

  /// True when a top-level '=' appears before index `limit` (a
  /// variable/lambda initializer, not a function definition). `operator`
  /// tokens exempt the check — operator== would otherwise trip it.
  static bool eq_before(const std::vector<Token>& pending, std::size_t limit) {
    if (has_kw(pending, "operator")) return false;
    int angle = 0;
    for (std::size_t i = 0; i < limit; ++i) {
      const std::string& t = pending[i].text;
      if (t == "<") ++angle;
      else if (t == ">" && angle > 0) --angle;
      else if (angle == 0 && t == "=") return true;
    }
    return false;
  }

  struct Signature {
    std::string cls;
    std::string name;
    std::size_t line = 0;
    std::vector<std::string> ret_idents;
    std::vector<std::string> requires_raw;  // space-joined expressions
    bool valid = false;
  };

  Signature parse_signature(const std::vector<Token>& clean,
                            const std::vector<Token>& orig,
                            const std::string& cls, std::size_t paren) {
    Signature sig;
    sig.cls = cls;
    collect_requires(orig, sig.requires_raw);
    if (has_kw(clean, "operator")) {
      sig.name = "operator";
      sig.line = clean.front().line;
      sig.valid = true;
      return sig;
    }
    if (paren == 0) return sig;
    std::size_t j = paren - 1;
    if (!is_ident_start(clean[j].text[0])) return sig;
    sig.name = clean[j].text;
    if (type_noise(sig.name)) return sig;  // `void (*fp)(int)` etc.
    if (j >= 1 && clean[j - 1].text == "~") {
      sig.name = "~" + sig.name;
      --j;
    }
    if (j >= 2 && clean[j - 1].text == "::" &&
        is_ident_start(clean[j - 2].text[0]))
      sig.cls = clean[j - 2].text;  // innermost qualifier
    sig.line = clean[j].line;
    for (std::size_t i = 0; i + (sig.name[0] == '~' ? 1 : 0) < j; ++i) {
      const std::string& t = clean[i].text;
      if (is_ident_start(t[0]) && !type_noise(t)) sig.ret_idents.push_back(t);
    }
    // Drop the qualifier itself from the return idents (A::f's "A").
    if (sig.cls != cls && !sig.ret_idents.empty() &&
        sig.ret_idents.back() == sig.cls)
      sig.ret_idents.pop_back();
    sig.valid = true;
    return sig;
  }

  static void collect_requires(const std::vector<Token>& pending,
                               std::vector<std::string>& out) {
    for (std::size_t i = 0; i + 1 < pending.size(); ++i) {
      if (pending[i].text != "DESH_REQUIRES" || pending[i + 1].text != "(")
        continue;
      int depth = 0;
      std::string expr;
      for (std::size_t j = i + 1; j < pending.size(); ++j) {
        const std::string& t = pending[j].text;
        if (t == "(") {
          if (depth++ == 0) continue;
        } else if (t == ")") {
          if (--depth == 0) break;
        }
        if (t == "," && depth == 1) {
          if (!expr.empty()) out.push_back(expr);
          expr.clear();
          continue;
        }
        if (!expr.empty()) expr += ' ';
        expr += t;
      }
      if (!expr.empty()) out.push_back(expr);
    }
  }

  void record_signature(const Signature& sig, const std::string& enclosing) {
    if (!sig.valid || sig.name == "operator") return;
    std::string cls = sig.cls;
    if (!cls.empty() && cls != enclosing && !model_.classes.count(cls)) {
      // Qualified by something that is not a known class: either a
      // namespace (obs::registry — a free function) or a class whose body
      // round 0 has not reached yet. Round 0 defers; round 1 has the full
      // class inventory, so an unknown qualifier there IS a namespace.
      if (round_ == 0) return;
      cls.clear();
    }
    if (!cls.empty()) {
      ClassInfo& ci = model_.classes[cls];
      if (ci.name.empty()) {  // out-of-class def seen before the class body
        ci.name = cls;
        ci.subsystem = sub_;
        ci.file = file_;
      }
      auto& reqs = ci.method_requires[sig.name];
      for (const std::string& r : sig.requires_raw)
        if (std::find(reqs.begin(), reqs.end(), r) == reqs.end())
          reqs.push_back(r);
      auto mr = ci.method_return.find(sig.name);
      if (mr == ci.method_return.end())
        ci.method_return.emplace(sig.name, sig.ret_idents);
      else if (mr->second.empty() && !sig.ret_idents.empty())
        mr->second = sig.ret_idents;
    } else {
      model_.free_return.emplace(sig.name, sig.ret_idents);
    }
  }

  void handle_function(const std::vector<Token>& clean,
                       const std::vector<Token>& orig, const std::string& cls,
                       std::size_t paren) {
    Signature sig = parse_signature(clean, orig, cls, paren);
    if (!sig.valid) {
      skip_braces();
      if (text(i_) == "{") { ++i_; skip_braces(); }
      return;
    }
    if (phase_ == 0) {
      record_signature(sig, cls);
      skip_braces();
      // A brace-init in the ctor-init-list splits the body; re-enter.
      if (text(i_) == "{") { ++i_; skip_braces(); }
      return;
    }
    Function fn;
    fn.file = file_;
    fn.subsystem = sub_;
    fn.cls = sig.cls;
    if (!fn.cls.empty() && !model_.classes.count(fn.cls))
      fn.cls.clear();  // namespace-qualified free function definition
    fn.name = sig.name;
    fn.line = sig.line;
    // Caller-holds set: annotations on this definition plus the class-body
    // declaration's.
    std::vector<std::string> raw = sig.requires_raw;
    if (!fn.cls.empty()) {
      auto ci = model_.classes.find(fn.cls);
      if (ci != model_.classes.end()) {
        auto mr = ci->second.method_requires.find(sig.name);
        if (mr != ci->second.method_requires.end())
          for (const std::string& r : mr->second)
            if (std::find(raw.begin(), raw.end(), r) == raw.end())
              raw.push_back(r);
      }
    }
    std::map<std::string, std::string> locals;
    seed_params(clean, paren, locals);
    for (const std::string& expr : raw) {
      const std::string id = resolve_lock_tokens(split(expr), fn.cls, locals);
      if (!id.empty()) fn.requires_locks.push_back(id);
    }
    scan_body(fn, locals);
    if (text(i_) == "{") {  // ctor-init brace-init split the body; continue
      ++i_;
      scan_body(fn, locals);
    }
    model_.functions.push_back(std::move(fn));
  }

  static std::vector<std::string> split(const std::string& expr) {
    std::vector<std::string> out;
    std::string cur;
    for (char c : expr) {
      if (c == ' ') {
        if (!cur.empty()) out.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
  }

  /// Seeds parameter types: for each top-level comma-separated parameter in
  /// the signature, the last known-class identifier is the type, the last
  /// identifier the name.
  void seed_params(const std::vector<Token>& pending, std::size_t paren,
                   std::map<std::string, std::string>& locals) {
    int depth = 0;
    std::string last_class, last_ident;
    auto flush = [&] {
      if (!last_class.empty() && !last_ident.empty() &&
          last_ident != last_class)
        locals[last_ident] = last_class;
      last_class.clear();
      last_ident.clear();
    };
    for (std::size_t i = paren; i < pending.size(); ++i) {
      const std::string& t = pending[i].text;
      if (t == "(") { ++depth; continue; }
      if (t == ")") { if (--depth == 0) { flush(); break; } continue; }
      if (depth != 1) continue;
      if (t == ",") { flush(); continue; }
      if (is_ident_start(t[0])) {
        if (model_.classes.count(t)) last_class = t;
        last_ident = t;
      }
    }
  }

  // -- declaration processing (phase 0) --------------------------------------

  void process_decl(const std::vector<Token>& orig, const std::string& cls) {
    std::vector<Token> pending = strip_macros(orig);
    while (pending.size() >= 2 &&
           in(pending[0].text, {"public", "private", "protected"}) &&
           pending[1].text == ":")
      pending.erase(pending.begin(), pending.begin() + 2);
    if (pending.empty()) return;
    if (in(pending[0].text, {"using", "typedef", "friend", "template",
                             "static_assert", "extern", "class", "struct",
                             "union", "enum", "return"}))
      return;
    const std::size_t paren = top_paren(pending);
    if (paren != std::string::npos && !eq_before(pending, paren)) {
      // Function prototype (a class-body declaration carries the
      // DESH_REQUIRES contract every definition inherits).
      record_signature(parse_signature(pending, orig, cls, paren), cls);
      return;
    }
    // Variable: truncate at '='/'[' then take the last identifier.
    std::size_t end = pending.size();
    int angle = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const std::string& t = pending[i].text;
      if (t == "<") ++angle;
      else if (t == ">" && angle > 0) --angle;
      else if (angle == 0 && (t == "=" || t == "[" || t == "{")) {
        end = i;
        break;
      }
    }
    std::string var;
    std::size_t var_line = 0;
    std::vector<std::string> type_idents;
    for (std::size_t i = 0; i < end; ++i) {
      const std::string& t = pending[i].text;
      if (!is_ident_start(t[0]) || type_noise(t)) continue;
      if (!var.empty()) type_idents.push_back(var);
      var = t;
      var_line = pending[i].line;
    }
    if (var.empty()) return;
    const bool is_mutex = std::find(type_idents.begin(), type_idents.end(),
                                    "Mutex") != type_idents.end();
    if (!cls.empty()) {
      ClassInfo& ci = model_.classes[cls];
      ci.member_types[var] = type_idents;
      if (is_mutex) {
        const std::string id = sub_ + "/" + cls + "::" + var;
        ci.mutex_members[var] = id;
        model_.mutexes.emplace(id, MutexInfo{id, file_, var_line});
      }
    } else {
      global_types_[file_][var] = type_idents;
      if (is_mutex) {
        const std::string id = sub_ + "/" + file_base(file_) + "::" + var;
        model_.file_mutexes[file_][var] = id;
        model_.mutexes.emplace(id, MutexInfo{id, file_, var_line});
      }
    }
  }

  // -- lock & type resolution ------------------------------------------------

  /// Last identifier in `idents` that names a known class, or "".
  std::string class_of(const std::vector<std::string>& idents) const {
    for (auto it = idents.rbegin(); it != idents.rend(); ++it)
      if (model_.classes.count(*it)) return *it;
    return "";
  }

  std::string type_of_var(const std::string& var, const std::string& cls,
                          const std::map<std::string, std::string>& locals)
      const {
    auto l = locals.find(var);
    if (l != locals.end()) return l->second;
    if (!cls.empty()) {
      auto ci = model_.classes.find(cls);
      if (ci != model_.classes.end()) {
        auto m = ci->second.member_types.find(var);
        if (m != ci->second.member_types.end()) {
          const std::string c = class_of(m->second);
          if (!c.empty()) return c;
        }
      }
    }
    auto g = global_types_.find(file_);
    if (g != global_types_.end()) {
      auto m = g->second.find(var);
      if (m != g->second.end()) {
        const std::string c = class_of(m->second);
        if (!c.empty()) return c;
      }
    }
    if (model_.classes.count(var)) return var;  // singleton-style statics
    return "";
  }

  /// Resolves a lock expression (token list) to a canonical mutex id, or ""
  /// when no tiered lookup lands.
  std::string resolve_lock_tokens(
      std::vector<std::string> toks, const std::string& cls,
      const std::map<std::string, std::string>& locals) const {
    // `this -> mu_` == `mu_`; strip dereferences and parens.
    std::vector<std::string> t;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i] == "this" || toks[i] == "*" || toks[i] == "(" ||
          toks[i] == ")")
        continue;
      t.push_back(toks[i]);
    }
    if (t.size() >= 2 && (t[0] == "." || t[0] == "->"))
      t.erase(t.begin());  // leftover from `this ->`
    auto member_lock = [&](const std::string& owner,
                           const std::string& m) -> std::string {
      auto ci = model_.classes.find(owner);
      if (ci == model_.classes.end()) return "";
      auto mm = ci->second.mutex_members.find(m);
      return mm == ci->second.mutex_members.end() ? "" : mm->second;
    };
    auto unique_owner = [&](const std::string& m) -> std::string {
      std::string id;
      for (const auto& [name, ci] : model_.classes) {
        auto mm = ci.mutex_members.find(m);
        if (mm != ci.mutex_members.end()) {
          if (!id.empty()) return "";  // ambiguous
          id = mm->second;
        }
      }
      return id;
    };
    if (t.size() == 1) {
      const std::string& v = t[0];
      if (!cls.empty()) {
        const std::string id = member_lock(cls, v);
        if (!id.empty()) return id;
      }
      auto fm = model_.file_mutexes.find(file_);
      if (fm != model_.file_mutexes.end()) {
        auto m = fm->second.find(v);
        if (m != fm->second.end()) return m->second;
      }
      return unique_owner(v);
    }
    if (t.size() == 3 && (t[1] == "." || t[1] == "->")) {
      const std::string owner = type_of_var(t[0], cls, locals);
      if (!owner.empty()) {
        const std::string id = member_lock(owner, t[2]);
        if (!id.empty()) return id;
      }
      if (!cls.empty()) {
        const std::string id = member_lock(cls, t[2]);
        if (!id.empty()) return id;
      }
      return unique_owner(t[2]);
    }
    return "";
  }

  // -- function body scan (phase 1) ------------------------------------------

  void scan_body(Function& fn, std::map<std::string, std::string>& locals) {
    int depth = 1;
    std::string last_class;
    std::set<std::string> guards;
    auto emit = [&](Event e) { fn.events.push_back(std::move(e)); };

    while (i_ < toks_->size() && depth > 0) {
      const Token& t = tok(i_);
      const std::string& s = t.text;

      if (s == "{") {
        ++depth;
        last_class.clear();
        ++i_;
        continue;
      }
      if (s == "}") {
        Event e;
        e.kind = EventKind::kScopeExit;
        e.line = t.line;
        e.depth = depth;
        emit(std::move(e));
        --depth;
        last_class.clear();
        ++i_;
        continue;
      }
      if (s == ";") {
        last_class.clear();
        ++i_;
        continue;
      }

      // Guard acquisition: util::LockGuard / util::UniqueLock.
      if ((s == "LockGuard" || s == "UniqueLock") &&
          is_ident_start(text(i_ + 1).empty() ? '0' : text(i_ + 1)[0]) &&
          text(i_ + 2) == "(") {
        const std::string var = text(i_ + 1);
        std::vector<std::string> expr;
        std::size_t j = i_ + 3;
        int pd = 1;
        for (; j < toks_->size() && pd > 0; ++j) {
          if (text(j) == "(") ++pd;
          else if (text(j) == ")") { if (--pd == 0) break; }
          if (pd > 0) expr.push_back(text(j));
        }
        Event e;
        e.kind = EventKind::kAcquire;
        e.line = t.line;
        e.depth = depth;
        e.flag = (s == "UniqueLock");
        e.var = var;
        for (const std::string& x : expr) {
          if (!e.detail.empty()) e.detail += ' ';
          e.detail += x;
        }
        e.lock = resolve_lock_tokens(expr, fn.cls, locals);
        if (e.lock.empty()) {
          e.lock = "?" + file_ + ":" + std::to_string(t.line);
          Finding f;
          f.rule = "unresolved-lock";
          f.file = file_;
          f.line = t.line;
          f.waived = waiver_with_reason(*src_, t.line - 1, "desh-analyze",
                                        "unresolved-lock");
          f.message = "cannot resolve lock expression '" + e.detail +
                      "' in " + fn.qual() +
                      " — the site participates in blocking-under-lock "
                      "as an anonymous lock but not in lock ordering";
          model_.findings.push_back(std::move(f));
        }
        guards.insert(var);
        emit(std::move(e));
        i_ = j + 1;
        continue;
      }

      // Guard toggles and condvar waits.
      const bool after_member = text(i_ ? i_ - 1 : 0) == "." ||
                                text(i_ ? i_ - 1 : 0) == "->";
      if (after_member && (s == "unlock" || s == "lock") &&
          text(i_ + 1) == "(" && i_ >= 2 && guards.count(text(i_ - 2))) {
        Event e;
        e.kind = s == "unlock" ? EventKind::kUnlock : EventKind::kRelock;
        e.line = t.line;
        e.var = text(i_ - 2);
        emit(std::move(e));
        i_ += 3;  // name ( )
        continue;
      }
      if (after_member &&
          (s == "wait" || s == "wait_for" || s == "wait_until") &&
          text(i_ + 1) == "(") {
        Event e;
        e.kind = EventKind::kCvWait;
        e.line = t.line;
        e.flag = s != "wait";  // bounded
        std::size_t j = i_ + 2;
        int pd = 1;
        for (; j < toks_->size() && pd > 0; ++j) {
          if (text(j) == "(") ++pd;
          else if (text(j) == ")") { if (--pd == 0) break; }
          else if (pd >= 1 && e.var.empty() && guards.count(text(j)))
            e.var = text(j);
        }
        emit(std::move(e));
        i_ = j + 1;
        continue;
      }

      // Direct blocking operations.
      if ((s == "sleep_for" || s == "sleep_until") && text(i_ + 1) == "(") {
        emit({EventKind::kBlock, t.line, 0, false, "", "",
              "std::this_thread::" + s, ""});
        ++i_;
        continue;
      }
      if (s == "system" && text(i_ + 1) == "(" && !after_member) {
        emit({EventKind::kBlock, t.line, 0, false, "", "", "system()", ""});
        ++i_;
        continue;
      }
      if (in(s, {"ifstream", "ofstream", "fstream"})) {
        emit({EventKind::kBlock, t.line, 0, false, "", "",
              "std::" + s + " (file I/O)", ""});
        ++i_;
        continue;
      }
      if (in(s, {"fopen", "fwrite", "fread", "fclose", "fflush", "fsync",
                 "ftruncate", "fgets", "fputs"}) &&
          text(i_ + 1) == "(") {
        emit({EventKind::kBlock, t.line, 0, false, "", "", s + "() (file I/O)",
              ""});
        ++i_;
        continue;
      }
      if ((s == "rename" || s == "remove") && text(i_ + 1) == "(" &&
          i_ >= 2 && text(i_ - 1) == "::" && text(i_ - 2) == "std") {
        emit({EventKind::kBlock, t.line, 0, false, "", "",
              "std::" + s + "() (file I/O)", ""});
        ++i_;
        continue;
      }
      if ((s == "filesystem" || s == "fs") && text(i_ + 1) == "::" &&
          fs_io_op(text(i_ + 2))) {
        emit({EventKind::kBlock, t.line, 0, false, "", "",
              "std::filesystem::" + text(i_ + 2) + " (file I/O)", ""});
        i_ += 3;
        continue;
      }
      if (s == "join" && after_member && text(i_ + 1) == "(" &&
          text(i_ + 2) == ")") {
        emit({EventKind::kBlock, t.line, 0, false, "", "", "thread join", ""});
        i_ += 3;
        continue;
      }

      // make_unique<C>/make_shared<C>: a constructor call — and when the
      // result is assigned to an existing smart pointer (`g_sink =
      // std::make_unique<FileSink>(...)`), the old pointee's destructor too.
      if ((s == "make_unique" || s == "make_shared") && text(i_ + 1) == "<") {
        std::size_t j = i_ + 2;
        int angle = 1;
        std::string last;
        for (; j < toks_->size() && angle > 0; ++j) {
          const std::string& x = text(j);
          if (x == "<") ++angle;
          else if (x == ">") --angle;
          else if (is_ident_start(x[0]) && model_.classes.count(x)) last = x;
        }
        if (!last.empty())
          emit({EventKind::kCall, t.line, 0, false, "", "", last, last});
        std::size_t k = i_;
        while (k > 0 && (text(k - 1) == "::" || text(k - 1) == "std")) --k;
        if (k >= 2 && text(k - 1) == "=" && is_ident_start(text(k - 2)[0])) {
          const std::string old = pointee_class(text(k - 2), fn.cls, locals);
          if (!old.empty())
            emit({EventKind::kCall, t.line, 0, false, "", "", "~" + old, old});
          if (!last.empty()) locals[text(k - 2)] = last;
        }
        i_ = j;
        continue;
      }

      // smart_ptr.reset(...): the old pointee's destructor runs here.
      if (s == "reset" && after_member && text(i_ + 1) == "(" && i_ >= 2) {
        const std::string owner = chain_class(i_ - 1, fn.cls, locals);
        std::string pointee;
        if (i_ >= 2 && is_ident_start(text(i_ - 2)[0]))
          pointee = pointee_class(text(i_ - 2), fn.cls, locals);
        if (!pointee.empty())
          emit({EventKind::kCall, t.line, 0, false, "", "", "~" + pointee,
                pointee});
        (void)owner;
        ++i_;
        continue;
      }

      // Local declaration with constructor args: `Foo x(...)` or
      // `std::unique_ptr<Foo> x(...)` — `x (` is a variable, not a call.
      if (is_ident_start(s[0]) && text(i_ + 1) == "(" && !call_keyword(s) &&
          !all_caps_macro(s) && !last_class.empty() && i_ >= 1 &&
          !model_.classes.count(s) &&
          (text(i_ - 1) == ">" || text(i_ - 1) == last_class)) {
        locals[s] = last_class;
        if (text(i_ - 1) == last_class)  // direct `Foo x(...)`: ctor runs
          emit({EventKind::kCall, t.line, 0, false, "", "", last_class,
                last_class});
        ++i_;
        continue;
      }

      // Generic calls.
      if (is_ident_start(s[0]) && text(i_ + 1) == "(" && !call_keyword(s) &&
          !all_caps_macro(s)) {
        Event e;
        e.kind = EventKind::kCall;
        e.line = t.line;
        e.detail = s;
        std::size_t expr_start = i_;
        if (after_member) {
          e.recv = chain_class(i_ - 1, fn.cls, locals);
          if (e.recv.empty()) e.recv = member_noise(s) ? "-" : "*";
          expr_start = chain_start_;
        } else if (i_ >= 1 && text(i_ - 1) == "::") {
          std::size_t q = i_ - 2;
          expr_start = q;
          const std::string& qual = text(q);
          if (model_.classes.count(qual)) e.recv = qual;
          else if (model_.classes.count(s)) { e.recv = s; }  // qualified ctor
          else e.recv = "::";
          while (expr_start >= 2 && text(expr_start - 1) == "::")
            expr_start -= 2;
        } else if (model_.classes.count(s)) {
          e.recv = s;  // constructor by bare class name
        } else if (!fn.cls.empty() && method_exists(fn.cls, s)) {
          e.recv = fn.cls;
        } else {
          e.recv = "::";
        }
        if (e.recv != "-") {
          // Call-return local inference: `v = f(...)`.
          if (expr_start >= 2 && text(expr_start - 1) == "=" &&
              is_ident_start(text(expr_start - 2)[0])) {
            const std::string rc = return_class(e.recv, s, fn.cls);
            if (!rc.empty()) locals[text(expr_start - 2)] = rc;
          }
          emit(std::move(e));
        }
        ++i_;
        continue;
      }

      // Local type hints.
      if (is_ident_start(s[0])) {
        const bool member_access =
            i_ >= 1 && (text(i_ - 1) == "." || text(i_ - 1) == "->");
        const bool ns_qualified = i_ >= 1 && text(i_ - 1) == "::";
        if (!member_access && model_.classes.count(s)) {
          last_class = s;  // a (possibly namespace-qualified) type mention
        } else if (!member_access && !ns_qualified && !last_class.empty() &&
                   s != last_class && !call_keyword(s) && !type_noise(s) &&
                   in(text(i_ + 1), {"=", ";", ",", ")", ":", "{"})) {
          locals[s] = last_class;
        }
        // Range-for / structured iteration: `for (auto& v : container)`.
        if (text(i_ + 1) == ":" && text(i_ + 2) != ":" &&
            is_ident_start(text(i_ + 2).empty() ? '0' : text(i_ + 2)[0])) {
          const std::string c = element_class(text(i_ + 2), fn.cls, locals);
          if (!c.empty()) locals[s] = c;
        }
        ++i_;
        continue;
      }

      ++i_;
    }
  }

  bool method_exists(const std::string& cls, const std::string& name) const {
    auto ci = model_.classes.find(cls);
    if (ci == model_.classes.end()) return false;
    return ci->second.method_return.count(name) ||
           ci->second.method_requires.count(name);
  }

  std::string return_class(const std::string& recv, const std::string& name,
                           const std::string& cls) const {
    const std::vector<std::string>* idents = nullptr;
    if (recv == "::") {
      auto it = model_.free_return.find(name);
      if (it != model_.free_return.end()) idents = &it->second;
    } else if (recv != "*" && recv != "-") {
      auto ci = model_.classes.find(recv);
      if (ci != model_.classes.end()) {
        auto mr = ci->second.method_return.find(name);
        if (mr != ci->second.method_return.end()) idents = &mr->second;
      }
    }
    (void)cls;
    return idents ? class_of(*idents) : "";
  }

  /// Element class of a container-typed variable (last known-class token in
  /// its declared type) — `servers_` of `std::vector<std::unique_ptr<
  /// serve::InferenceServer>>` yields InferenceServer.
  std::string element_class(const std::string& var, const std::string& cls,
                            const std::map<std::string, std::string>& locals)
      const {
    return pointee_class(var, cls, locals);
  }

  std::string pointee_class(const std::string& var, const std::string& cls,
                            const std::map<std::string, std::string>& locals)
      const {
    auto l = locals.find(var);
    if (l != locals.end()) return l->second;
    if (!cls.empty()) {
      auto ci = model_.classes.find(cls);
      if (ci != model_.classes.end()) {
        auto m = ci->second.member_types.find(var);
        if (m != ci->second.member_types.end()) return class_of(m->second);
      }
    }
    auto g = global_types_.find(file_);
    if (g != global_types_.end()) {
      auto m = g->second.find(var);
      if (m != g->second.end()) return class_of(m->second);
    }
    return "";
  }

  /// Resolves the receiver chain ending at `dot` (the '.'/'->' token before
  /// the member name) to a class. Sets chain_start_ to the chain's first
  /// token. Chains walk member and call hops: `a.b->c()`, `servers_[i]`,
  /// `obs::registry()`, `ServeObs::get()`.
  std::string chain_class(std::size_t dot, const std::string& cls,
                          const std::map<std::string, std::string>& locals) {
    struct Hop {
      std::string name;
      bool call = false;
      std::string qual;  // for call hops: explicit qualifier
    };
    std::vector<Hop> hops;
    std::size_t j = dot;
    while (true) {
      if (j == 0) break;
      --j;  // token before '.'/'->'
      bool call = false;
      if (text(j) == ")") {
        int pd = 1;
        if (j == 0) break;
        while (j > 0 && pd > 0) {
          --j;
          if (text(j) == ")") ++pd;
          else if (text(j) == "(") --pd;
        }
        if (pd != 0 || j == 0) { hops.clear(); break; }
        --j;
        call = true;
      } else if (text(j) == "]") {
        int bd = 1;
        if (j == 0) break;
        while (j > 0 && bd > 0) {
          --j;
          if (text(j) == "]") ++bd;
          else if (text(j) == "[") --bd;
        }
        if (bd != 0 || j == 0) { hops.clear(); break; }
        --j;
      }
      if (text(j).empty() || !is_ident_start(text(j)[0])) {
        hops.clear();
        break;
      }
      Hop h;
      h.name = text(j);
      h.call = call;
      if (j >= 2 && text(j - 1) == "::" && is_ident_start(text(j - 2)[0])) {
        h.qual = text(j - 2);
        j -= 2;
      }
      hops.insert(hops.begin(), h);
      if (j == 0) break;
      if (text(j - 1) == "." || text(j - 1) == "->") {
        --j;
        continue;
      }
      break;
    }
    chain_start_ = j;
    if (hops.empty()) return "";
    // Resolve the base hop.
    std::string cur;
    const Hop& base = hops.front();
    if (base.name == "this") {
      cur = cls;
    } else if (base.call) {
      if (!base.qual.empty() && model_.classes.count(base.qual)) {
        cur = return_class(base.qual, base.name, cls);
      } else {
        cur = return_class("::", base.name, cls);
        if (cur.empty() && !cls.empty() && method_exists(cls, base.name))
          cur = return_class(cls, base.name, cls);
      }
    } else {
      cur = type_of_var(base.name, cls, locals);
    }
    if (cur.empty()) return "";
    // Walk the remaining hops through member/return types.
    for (std::size_t h = 1; h < hops.size(); ++h) {
      auto ci = model_.classes.find(cur);
      if (ci == model_.classes.end()) return "";
      if (hops[h].call) {
        cur = return_class(cur, hops[h].name, cls);
      } else {
        auto m = ci->second.member_types.find(hops[h].name);
        if (m == ci->second.member_types.end()) return "";
        cur = class_of(m->second);
      }
      if (cur.empty()) return "";
    }
    return cur;
  }

  Model model_;
  std::vector<TokenFile> token_files_;
  // file -> global variable -> type identifier tokens
  std::map<std::string, std::map<std::string, std::vector<std::string>>>
      global_types_;
  const std::vector<Token>* toks_ = nullptr;
  const SourceFile* src_ = nullptr;
  std::size_t i_ = 0;
  std::size_t chain_start_ = 0;
  std::string file_;
  std::string sub_;
  int phase_ = 0;  // 0 = declarations, 1 = bodies
  int round_ = 0;
};

}  // namespace

std::string subsystem_of(const std::string& rel_path) {
  std::string p = rel_path;
  if (p.rfind("src/", 0) == 0) p = p.substr(4);
  const std::size_t slash = p.find('/');
  return slash == std::string::npos ? "desh" : p.substr(0, slash);
}

bool excluded_from_model(const std::string& rel_path) {
  // The wrapper layer's own internals are the raw primitives everything
  // else is analyzed in terms of.
  return rel_path == "src/util/sync.hpp";
}

std::vector<const Function*> Model::resolve_call(const Event& call) const {
  std::vector<const Function*> out;
  auto push = [&](const std::vector<std::size_t>& idx) {
    for (std::size_t i : idx) out.push_back(&functions[i]);
  };
  if (call.recv == "-") return out;
  if (call.recv == "::") {
    auto it = free_index.find(call.detail);
    if (it != free_index.end()) push(it->second);
  } else if (call.recv == "*") {
    auto it = methods_by_name.find(call.detail);
    if (it != methods_by_name.end()) push(it->second);
  } else {
    auto it = method_index.find(call.recv + "::" + call.detail);
    if (it != method_index.end()) push(it->second);
  }
  return out;
}

Model build_model(const std::vector<SourceFile>& files) {
  return Extractor(files).build();
}

}  // namespace desh::analyze
