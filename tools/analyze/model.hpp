// Whole-tree semantic model for desh_analyze.
//
// Parses every scrubbed source file into a token stream and extracts, per
// translation unit:
//   - classes, their data members (with type tokens) and mutex members;
//   - file-scope mutexes;
//   - functions (free and member) with a linear event stream: lock
//     acquisitions (util::LockGuard / util::UniqueLock on util::Mutex),
//     scope exits, explicit unlock()/lock() toggles, condvar waits,
//     blocking operations (file I/O, sleep, system(), thread joins), and
//     outgoing calls with a resolved receiver class where possible;
//   - DESH_REQUIRES annotations (the caller-holds contract) from class
//     bodies;
//   - the project-include graph.
//
// The extractor is deliberately conservative, not exact: a call it cannot
// resolve fans out to every method with that name, and a lock expression it
// cannot resolve becomes a per-site synthetic lock plus a waivable
// `unresolved-lock` finding. The passes in passes.hpp consume this model;
// nothing here decides what is a violation.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "finding.hpp"
#include "source.hpp"

namespace desh::analyze {

/// "src/fleet/controller.cpp" -> "fleet"; files directly under src/
/// (desh.hpp) -> "desh".
std::string subsystem_of(const std::string& rel_path);

struct Include {
  std::string path;  // as written: src/-relative ("obs/metrics.hpp")
  std::size_t line = 0;
};

enum class EventKind {
  kAcquire,    // LockGuard/UniqueLock construction
  kScopeExit,  // '}' — releases every guard at >= this depth
  kUnlock,     // <guard>.unlock()
  kRelock,     // <guard>.lock()
  kCvWait,     // condvar .wait(...); flag = bounded (wait_for/wait_until)
  kBlock,      // direct blocking operation
  kCall,       // outgoing call
};

struct Event {
  EventKind kind = EventKind::kCall;
  std::size_t line = 0;
  int depth = 0;      // kAcquire: brace depth of the guard; kScopeExit: the
                      // depth being closed
  bool flag = false;  // kAcquire: UniqueLock (unlockable); kCvWait: bounded
  std::string lock;   // kAcquire: canonical lock id ("?<file>:<line>" when
                      // unresolved)
  std::string var;    // guard variable (kAcquire/kUnlock/kRelock); for
                      // kCvWait the guard var passed to wait, "" if none
  std::string detail;  // kAcquire: raw lock expression; kBlock: operation;
                       // kCall: callee name
  std::string recv;    // kCall receiver: class name, "::" = free function,
                       // "*" = unresolved fan-out by name
};

struct Function {
  std::string file;
  std::string subsystem;
  std::string cls;  // "" for free functions
  std::string name;
  std::size_t line = 0;
  std::vector<std::string> requires_locks;  // canonical ids (DESH_REQUIRES)
  std::vector<Event> events;

  std::string qual() const { return cls.empty() ? name : cls + "::" + name; }
};

struct MutexInfo {
  std::string id;  // "<subsystem>/<Owner>::<member>", Owner = class name or
                   // file base name for file-scope mutexes
  std::string file;
  std::size_t line = 0;
};

struct ClassInfo {
  std::string name;
  std::string subsystem;
  std::string file;
  std::size_t line = 0;
  // member variable -> identifier tokens of its declared type
  std::map<std::string, std::vector<std::string>> member_types;
  // mutex member variable -> canonical lock id
  std::map<std::string, std::string> mutex_members;
  // method name -> raw DESH_REQUIRES expressions (resolved lazily)
  std::map<std::string, std::vector<std::string>> method_requires;
  // method name -> identifier tokens of its return type
  std::map<std::string, std::vector<std::string>> method_return;
};

struct Model {
  std::vector<Function> functions;
  std::map<std::string, ClassInfo> classes;  // by bare class name
  std::map<std::string, MutexInfo> mutexes;  // by canonical id
  // file -> file-scope mutex variable -> canonical id
  std::map<std::string, std::map<std::string, std::string>> file_mutexes;
  // free function name -> identifier tokens of its return type
  std::map<std::string, std::vector<std::string>> free_return;
  std::map<std::string, std::vector<Include>> includes;  // by file
  std::vector<Finding> findings;  // extraction findings (unresolved-lock)

  // Call-resolution indexes, filled by build_model.
  std::map<std::string, std::vector<std::size_t>> free_index;  // name -> fn
  std::map<std::string, std::vector<std::size_t>> method_index;  // Cls::name
  std::map<std::string, std::vector<std::size_t>> methods_by_name;

  /// Callee lookup honouring the Event::recv encoding ("::" free, "*"
  /// fan-out by method name, otherwise an exact class).
  std::vector<const Function*> resolve_call(const Event& call) const;
};

/// Files the extractor must not model: the annotated wrapper layer itself
/// (its internals ARE the raw primitives every rule reasons above).
bool excluded_from_model(const std::string& rel_path);

Model build_model(const std::vector<SourceFile>& files);

}  // namespace desh::analyze
