#include "passes.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

namespace desh::analyze {

namespace {

std::vector<std::string> words(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string w;
  while (is >> w) out.push_back(w);
  return out;
}

std::string strip_comment(const std::string& line) {
  const std::size_t hash = line.find('#');
  return hash == std::string::npos ? line : line.substr(0, hash);
}

}  // namespace

bool parse_lock_order_contract(const std::filesystem::path& path,
                               LockOrderContract& out, std::string& error) {
  out.path = path.generic_string();
  std::vector<std::string> lines;
  if (!read_file(path, lines)) {
    error = "cannot read " + out.path;
    return false;
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::vector<std::string> w = words(strip_comment(lines[i]));
    if (w.empty()) continue;
    const std::string where = out.path + ":" + std::to_string(i + 1);
    if (w[0] == "lock") {
      if (w.size() != 3) {
        error = where + ": expected `lock <alias> <canonical-id>`";
        return false;
      }
      if (out.locks.count(w[1])) {
        error = where + ": duplicate lock alias '" + w[1] + "'";
        return false;
      }
      out.locks[w[1]] = w[2];
      out.lock_lines[w[1]] = i + 1;
    } else if (w[0] == "order") {
      if (w.size() != 4 || w[2] != "->") {
        error = where + ": expected `order <alias> -> <alias>`";
        return false;
      }
      for (const std::string& a : {w[1], w[3]})
        if (!out.locks.count(a)) {
          error = where + ": order names undeclared lock alias '" + a + "'";
          return false;
        }
      out.order.emplace_back(w[1], w[3]);
      out.order_lines[w[1] + "->" + w[3]] = i + 1;
    } else {
      error = where + ": unknown directive '" + w[0] + "'";
      return false;
    }
  }
  return true;
}

bool parse_layers_contract(const std::filesystem::path& path,
                           LayersContract& out, std::string& error) {
  out.path = path.generic_string();
  std::vector<std::string> lines;
  if (!read_file(path, lines)) {
    error = "cannot read " + out.path;
    return false;
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::vector<std::string> w = words(strip_comment(lines[i]));
    if (w.empty()) continue;
    const std::string where = out.path + ":" + std::to_string(i + 1);
    if (w[0] == "interface") {
      if (w.size() < 2) {
        error = where + ": expected `interface <src-relative-header> <why>`";
        return false;
      }
      out.interfaces.insert(w[1]);
    } else if (w[0] == "subsystem") {
      if (w.size() < 2 || w[1].back() != ':') {
        error = where + ": expected `subsystem <name>: <deps...>`";
        return false;
      }
      const std::string name = w[1].substr(0, w[1].size() - 1);
      if (out.deps.count(name)) {
        error = where + ": duplicate subsystem '" + name + "'";
        return false;
      }
      out.deps[name] = std::vector<std::string>(w.begin() + 2, w.end());
      out.dep_lines[name] = i + 1;
    } else {
      error = where + ": unknown directive '" + w[0] + "'";
      return false;
    }
  }
  return true;
}

namespace {

bool synthetic(const std::string& lock_id) {
  return !lock_id.empty() && lock_id[0] == '?';
}

class Analyzer {
 public:
  Analyzer(const Model& model, const std::vector<SourceFile>& files,
           const LockOrderContract& locks, const LayersContract& layers)
      : model_(model), locks_(locks), layers_(layers) {
    for (const SourceFile& f : files) files_[f.rel_path] = &f;
    for (const auto& [alias, id] : locks_.locks) alias_of_[id] = alias;
  }

  AnalysisResult run() {
    result_.findings = model_.findings;  // unresolved-lock extraction findings
    resolve_targets();
    compute_may_acquire();
    compute_may_block();
    for (std::size_t i = 0; i < model_.functions.size(); ++i) simulate(i);
    check_lock_contract();
    detect_cycles();
    check_layering();
    for (const auto& [id, info] : model_.mutexes) {
      (void)info;
      result_.lock_nodes.push_back(id);
    }
    sort_findings(result_.findings);
    std::sort(result_.lock_edges.begin(), result_.lock_edges.end(),
              [](const GraphEdge& a, const GraphEdge& b) {
                return std::tie(a.from, a.to) < std::tie(b.from, b.to);
              });
    std::sort(result_.layer_edges.begin(), result_.layer_edges.end(),
              [](const GraphEdge& a, const GraphEdge& b) {
                return std::tie(a.from, a.to) < std::tie(b.from, b.to);
              });
    return std::move(result_);
  }

 private:
  /// Pretty name for a lock id: prefer the contract alias.
  std::string pretty(const std::string& id) const {
    auto it = alias_of_.find(id);
    return it == alias_of_.end() ? id : it->second + " (" + id + ")";
  }

  bool waived_at(const std::string& file, std::size_t line,
                 const char* rule) const {
    auto it = files_.find(file);
    if (it == files_.end() || line == 0 || line > it->second->lines.size())
      return false;
    return waiver_with_reason(*it->second, line - 1, "desh-analyze", rule);
  }

  void add_finding(const char* rule, const std::string& file,
                   std::size_t line, std::string message, bool waivable) {
    Finding f;
    f.rule = rule;
    f.file = file;
    f.line = line;
    f.message = std::move(message);
    f.waived = waivable && waived_at(file, line, rule);
    result_.findings.push_back(std::move(f));
  }

  // -- call graph ------------------------------------------------------------

  void resolve_targets() {
    targets_.resize(model_.functions.size());
    for (std::size_t i = 0; i < model_.functions.size(); ++i) {
      const Function& fn = model_.functions[i];
      targets_[i].resize(fn.events.size());
      for (std::size_t e = 0; e < fn.events.size(); ++e) {
        if (fn.events[e].kind != EventKind::kCall) continue;
        for (const Function* g : model_.resolve_call(fn.events[e]))
          targets_[i][e].push_back(
              static_cast<std::size_t>(g - model_.functions.data()));
      }
    }
  }

  void compute_may_acquire() {
    may_acquire_.assign(model_.functions.size(), {});
    for (std::size_t i = 0; i < model_.functions.size(); ++i)
      for (const Event& e : model_.functions[i].events)
        if (e.kind == EventKind::kAcquire && !synthetic(e.lock))
          may_acquire_[i].insert(e.lock);
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < model_.functions.size(); ++i)
        for (const auto& callees : targets_[i])
          for (std::size_t g : callees)
            for (const std::string& l : may_acquire_[g])
              if (may_acquire_[i].insert(l).second) changed = true;
    }
  }

  void compute_may_block() {
    may_block_.assign(model_.functions.size(), "");
    for (std::size_t i = 0; i < model_.functions.size(); ++i) {
      const Function& fn = model_.functions[i];
      for (const Event& e : fn.events) {
        if (e.kind == EventKind::kBlock) {
          may_block_[i] = e.detail + " at " + fn.file + ":" +
                          std::to_string(e.line);
          break;
        }
        if (e.kind == EventKind::kCvWait && !e.flag) {
          may_block_[i] = "unbounded CondVar::wait at " + fn.file + ":" +
                          std::to_string(e.line);
          break;
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < model_.functions.size(); ++i) {
        if (!may_block_[i].empty()) continue;
        for (const auto& callees : targets_[i]) {
          for (std::size_t g : callees) {
            if (may_block_[g].empty()) continue;
            may_block_[i] =
                model_.functions[g].qual() + " -> " + may_block_[g];
            changed = true;
            break;
          }
          if (!may_block_[i].empty()) break;
        }
        // Keep the witness chain bounded: one hop recorded per function.
      }
    }
  }

  // -- per-function simulation -----------------------------------------------

  struct Held {
    std::string id;
    std::string var;
    int depth = 0;
    bool active = true;
  };

  static std::string held_list(const std::vector<Held>& held,
                               const std::string& skip_var,
                               const Analyzer& a) {
    std::string out;
    for (const Held& h : held) {
      if (!h.active) continue;
      if (!skip_var.empty() && h.var == skip_var) continue;
      if (!out.empty()) out += ", ";
      out += synthetic(h.id) ? ("unresolved lock at " + h.id.substr(1))
                             : a.pretty(h.id);
    }
    return out;
  }

  void record_edge(const std::string& from, const std::string& to,
                   const Function& fn, std::size_t line,
                   const std::string& via) {
    if (synthetic(from) || synthetic(to)) return;
    const auto key = std::make_pair(from, to);
    if (edges_.count(key)) return;
    GraphEdge e;
    e.from = from;
    e.to = to;
    e.file = fn.file;
    e.line = line;
    e.via = via;
    edges_.emplace(key, e);
    result_.lock_edges.push_back(std::move(e));
  }

  void simulate(std::size_t fi) {
    const Function& fn = model_.functions[fi];
    std::vector<Held> held;
    for (const std::string& id : fn.requires_locks)
      held.push_back({id, "", 0, true});
    auto any_active = [&] {
      return std::any_of(held.begin(), held.end(),
                         [](const Held& h) { return h.active; });
    };
    for (std::size_t ei = 0; ei < fn.events.size(); ++ei) {
      const Event& e = fn.events[ei];
      switch (e.kind) {
        case EventKind::kAcquire: {
          for (const Held& h : held) {
            if (!h.active) continue;
            if (h.id == e.lock && !synthetic(e.lock)) {
              add_finding("lock-order", fn.file, e.line,
                          fn.qual() + " re-acquires " + pretty(e.lock) +
                              " already held on entry or above — "
                              "util::Mutex is not recursive",
                          false);
              continue;
            }
            record_edge(h.id, e.lock, fn, e.line, "");
          }
          held.push_back({e.lock, e.var, e.depth, true});
          break;
        }
        case EventKind::kScopeExit: {
          held.erase(std::remove_if(held.begin(), held.end(),
                                    [&](const Held& h) {
                                      return h.depth >= e.depth &&
                                             h.depth > 0;
                                    }),
                     held.end());
          break;
        }
        case EventKind::kUnlock:
        case EventKind::kRelock: {
          for (auto it = held.rbegin(); it != held.rend(); ++it)
            if (it->var == e.var) {
              it->active = e.kind == EventKind::kRelock;
              break;
            }
          break;
        }
        case EventKind::kCvWait: {
          if (e.flag) break;  // bounded wait_for/wait_until
          const std::string others = held_list(held, e.var, *this);
          if (others.empty()) break;
          if (dedupe_.insert(fn.file + ":" + std::to_string(e.line) +
                             ":block").second)
            add_finding("blocking-under-lock", fn.file, e.line,
                        fn.qual() + " waits unbounded on a CondVar while "
                        "holding " + others,
                        true);
          break;
        }
        case EventKind::kBlock: {
          if (!any_active()) break;
          if (dedupe_.insert(fn.file + ":" + std::to_string(e.line) +
                             ":block").second)
            add_finding("blocking-under-lock", fn.file, e.line,
                        fn.qual() + ": " + e.detail + " while holding " +
                            held_list(held, "", *this),
                        true);
          break;
        }
        case EventKind::kCall: {
          if (!any_active()) break;
          for (std::size_t g : targets_[fi][ei]) {
            for (const std::string& l : may_acquire_[g]) {
              bool reacquire = false;
              for (const Held& h : held)
                if (h.active && h.id == l) reacquire = true;
              if (reacquire) {
                const std::string key =
                    fn.file + ":" + std::to_string(e.line) + ":re:" + l;
                // Call-graph result, so over-approximate: waivable,
                // unlike a direct re-acquisition.
                if (dedupe_.insert(key).second)
                  add_finding(
                      "lock-order", fn.file, e.line,
                      fn.qual() + " calls " + model_.functions[g].qual() +
                          " which may re-acquire held " + pretty(l) +
                          " — util::Mutex is not recursive",
                      true);
                continue;
              }
              for (const Held& h : held)
                if (h.active)
                  record_edge(h.id, l, fn, e.line,
                              model_.functions[g].qual());
            }
            if (!may_block_[g].empty()) {
              const std::string key =
                  fn.file + ":" + std::to_string(e.line) + ":block";
              if (dedupe_.insert(key).second)
                add_finding("blocking-under-lock", fn.file, e.line,
                            fn.qual() + " calls " +
                                model_.functions[g].qual() +
                                " which may block (" + may_block_[g] +
                                ") while holding " +
                                held_list(held, "", *this),
                            true);
            }
          }
          break;
        }
      }
    }
  }

  // -- lock-order contract ---------------------------------------------------

  void check_lock_contract() {
    // Contract rot: every named lock must exist in the tree.
    for (const auto& [alias, id] : locks_.locks)
      if (!model_.mutexes.count(id))
        add_finding("lock-order", locks_.path, locks_.lock_lines.at(alias),
                    "contract lock '" + alias + "' names unknown mutex '" +
                        id + "' — the tree moved; update "
                        "lock_order.contract",
                    false);
    // The declared order itself must be a DAG.
    std::map<std::string, std::vector<std::string>> decl;
    for (const auto& [a, b] : locks_.order) decl[a].push_back(b);
    std::string cycle = find_cycle(decl);
    if (!cycle.empty())
      add_finding("lock-order", locks_.path, 1,
                  "declared lock order is cyclic: " + cycle, false);
    // Reachability over the declared order.
    auto reachable = [&](const std::string& from, const std::string& to) {
      std::set<std::string> seen{from};
      std::vector<std::string> queue{from};
      while (!queue.empty()) {
        const std::string cur = queue.back();
        queue.pop_back();
        if (cur == to) return true;
        for (const std::string& next : decl[cur])
          if (seen.insert(next).second) queue.push_back(next);
      }
      return false;
    };
    for (const GraphEdge& e : result_.lock_edges) {
      auto fa = alias_of_.find(e.from);
      auto ta = alias_of_.find(e.to);
      if (fa == alias_of_.end() || ta == alias_of_.end()) continue;
      if (reachable(fa->second, ta->second)) continue;
      const std::string via =
          e.via.empty() ? "" : (" (via call to " + e.via + ")");
      if (reachable(ta->second, fa->second)) {
        add_finding("lock-order", e.file, e.line,
                    "acquisition order " + fa->second + " -> " + ta->second +
                        via + " contradicts the declared order '" +
                        ta->second + " -> " + fa->second +
                        "' in lock_order.contract",
                    false);
      } else {
        add_finding("lock-order", e.file, e.line,
                    "acquisition edge " + fa->second + " -> " + ta->second +
                        via + " is not declared in lock_order.contract — "
                        "add `order " + fa->second + " -> " + ta->second +
                        "` if this nesting is intended",
                    false);
      }
    }
  }

  /// Returns "a -> b -> a" for some cycle in `adj`, or "".
  static std::string find_cycle(
      const std::map<std::string, std::vector<std::string>>& adj) {
    std::set<std::string> done, path_set;
    std::vector<std::string> path;
    std::string found;
    std::function<void(const std::string&)> dfs = [&](const std::string& n) {
      if (!found.empty() || done.count(n)) return;
      if (path_set.count(n)) {
        auto it = std::find(path.begin(), path.end(), n);
        for (; it != path.end(); ++it) found += *it + " -> ";
        found += n;
        return;
      }
      path_set.insert(n);
      path.push_back(n);
      auto a = adj.find(n);
      if (a != adj.end())
        for (const std::string& next : a->second) dfs(next);
      path.pop_back();
      path_set.erase(n);
      done.insert(n);
    };
    for (const auto& [n, out] : adj) {
      (void)out;
      dfs(n);
      if (!found.empty()) break;
    }
    return found;
  }

  void detect_cycles() {
    std::map<std::string, std::vector<std::string>> adj;
    for (const GraphEdge& e : result_.lock_edges) adj[e.from].push_back(e.to);
    const std::string cycle = find_cycle(adj);
    if (cycle.empty()) return;
    // Anchor the finding at the witness of the cycle's first edge.
    const std::vector<std::string> nodes = words(cycle);
    std::string file = locks_.path;
    std::size_t line = 1;
    if (nodes.size() >= 3) {
      auto it = edges_.find(std::make_pair(nodes[0], nodes[2]));
      if (it != edges_.end()) {
        file = it->second.file;
        line = it->second.line;
      }
    }
    add_finding("lock-order", file, line,
                "lock-order cycle detected: " + cycle +
                    " — two threads taking these locks in different orders "
                    "can deadlock",
                false);
  }

  // -- layering --------------------------------------------------------------

  void check_layering() {
    std::map<std::pair<std::string, std::string>, GraphEdge> observed;
    for (const auto& [file, incs] : model_.includes) {
      const std::string sub = subsystem_of(file);
      for (const Include& inc : incs) {
        if (!files_.count("src/" + inc.path)) continue;  // not a tree header
        const std::string tsub = subsystem_of("src/" + inc.path);
        if (tsub == sub) continue;
        if (layers_.interfaces.count(inc.path)) continue;
        const auto key = std::make_pair(sub, tsub);
        if (observed.count(key)) continue;
        GraphEdge e;
        e.from = sub;
        e.to = tsub;
        e.file = file;
        e.line = inc.line;
        e.via = inc.path;
        observed.emplace(key, e);
      }
    }
    for (auto& [key, e] : observed) {
      (void)key;
      result_.layer_edges.push_back(e);
      auto d = layers_.deps.find(e.from);
      if (d == layers_.deps.end()) {
        add_finding("layering", e.file, e.line,
                    "subsystem '" + e.from + "' is not declared in "
                    "layers.contract",
                    false);
        continue;
      }
      const bool ok =
          std::find(d->second.begin(), d->second.end(), e.to) !=
              d->second.end() ||
          std::find(d->second.begin(), d->second.end(), "*") !=
              d->second.end();
      if (!ok)
        add_finding("layering", e.file, e.line,
                    "include of \"" + e.via + "\" creates subsystem edge " +
                        e.from + " -> " + e.to + ", which layers.contract "
                        "does not allow — layering is not waivable in code; "
                        "move the dependency or change the contract",
                    false);
    }
    // Contract rot and declared-DAG check.
    std::map<std::string, std::vector<std::string>> decl;
    for (const auto& [sub, deps] : layers_.deps) {
      for (const std::string& d : deps) {
        if (d == "*") {
          for (const auto& [other, od] : layers_.deps) {
            (void)od;
            if (other != sub) decl[sub].push_back(other);
          }
          continue;
        }
        if (!layers_.deps.count(d))
          add_finding("layering", layers_.path, layers_.dep_lines.at(sub),
                      "subsystem '" + sub + "' declares dependency on "
                      "unknown subsystem '" + d + "'",
                      false);
        decl[sub].push_back(d);
      }
    }
    const std::string cycle = find_cycle(decl);
    if (!cycle.empty())
      add_finding("layering", layers_.path, 1,
                  "declared subsystem graph is cyclic: " + cycle, false);
  }

  const Model& model_;
  const LockOrderContract& locks_;
  const LayersContract& layers_;
  std::map<std::string, const SourceFile*> files_;
  std::map<std::string, std::string> alias_of_;  // lock id -> alias
  std::vector<std::vector<std::vector<std::size_t>>> targets_;
  std::vector<std::set<std::string>> may_acquire_;
  std::vector<std::string> may_block_;  // "" = cannot block; else witness
  std::map<std::pair<std::string, std::string>, GraphEdge> edges_;
  std::set<std::string> dedupe_;
  AnalysisResult result_;
};

std::string dot_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

AnalysisResult run_analysis(const Model& model,
                            const std::vector<SourceFile>& files,
                            const LockOrderContract& locks,
                            const LayersContract& layers) {
  return Analyzer(model, files, locks, layers).run();
}

void write_lock_dot(std::ostream& os, const AnalysisResult& result,
                    const LockOrderContract& contract) {
  std::map<std::string, std::string> alias_of;
  for (const auto& [alias, id] : contract.locks) alias_of[id] = alias;
  os << "digraph lock_order {\n  rankdir=LR;\n"
     << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const std::string& id : result.lock_nodes) {
    auto a = alias_of.find(id);
    os << "  \"" << dot_escape(id) << "\"";
    if (a != alias_of.end())
      os << " [label=\"" << dot_escape(a->second) << "\\n" << dot_escape(id)
         << "\"]";
    os << ";\n";
  }
  std::set<std::pair<std::string, std::string>> observed;
  for (const GraphEdge& e : result.lock_edges) {
    observed.emplace(e.from, e.to);
    os << "  \"" << dot_escape(e.from) << "\" -> \"" << dot_escape(e.to)
       << "\" [label=\"" << dot_escape(e.file + ":" + std::to_string(e.line))
       << "\"];\n";
  }
  // Declared-but-unobserved edges, dashed: the contract's slack.
  for (const auto& [a, b] : contract.order) {
    const std::string from = contract.locks.at(a);
    const std::string to = contract.locks.at(b);
    if (observed.count(std::make_pair(from, to))) continue;
    os << "  \"" << dot_escape(from) << "\" -> \"" << dot_escape(to)
       << "\" [style=dashed, color=gray];\n";
  }
  os << "}\n";
}

void write_layers_dot(std::ostream& os, const AnalysisResult& result,
                      const LayersContract& contract) {
  os << "digraph layers {\n  rankdir=BT;\n  node [shape=box];\n";
  for (const auto& [sub, deps] : contract.deps) {
    (void)deps;
    os << "  \"" << dot_escape(sub) << "\";\n";
  }
  std::set<std::pair<std::string, std::string>> observed;
  for (const GraphEdge& e : result.layer_edges) {
    observed.emplace(e.from, e.to);
    os << "  \"" << dot_escape(e.from) << "\" -> \"" << dot_escape(e.to)
       << "\";\n";
  }
  for (const auto& [sub, deps] : contract.deps)
    for (const std::string& d : deps) {
      if (d == "*" || observed.count(std::make_pair(sub, d))) continue;
      os << "  \"" << dot_escape(sub) << "\" -> \"" << dot_escape(d)
         << "\" [style=dashed, color=gray];\n";
    }
  os << "}\n";
}

}  // namespace desh::analyze
