// The three cross-TU analyses behind desh_analyze, plus the contract-file
// parsers they check against.
//
//   lock-order           every observed lock-acquisition edge between locks
//                        named in tools/analyze/lock_order.contract must be
//                        consistent with the declared partial order; the
//                        full observed graph (named or not) must be acyclic
//                        and re-acquiring a held lock is an error.
//   layering             every subsystem-level include edge must be declared
//                        in tools/analyze/layers.contract; the declared
//                        graph must be a DAG. Not waivable in code — the
//                        contract file is the escape hatch.
//   blocking-under-lock  file I/O, sleep_for, system(), thread joins and
//                        unbounded condvar waits reached (directly or
//                        through the conservative call graph) while a lock
//                        is held. Waivable per site with a justified
//                        `desh-analyze: allow(blocking-under-lock) <why>`.
//
// The model is conservative, so these passes over-approximate: an edge here
// means "the analyzer cannot prove this cannot happen".
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "finding.hpp"
#include "model.hpp"
#include "source.hpp"

namespace desh::analyze {

struct LockOrderContract {
  std::string path;                          // for finding locations
  std::map<std::string, std::string> locks;  // alias -> canonical lock id
  std::map<std::string, std::size_t> lock_lines;
  std::vector<std::pair<std::string, std::string>> order;  // alias pairs
  std::map<std::string, std::size_t> order_lines;  // "a->b" -> line
};

struct LayersContract {
  std::string path;
  std::set<std::string> interfaces;  // src-relative header paths
  std::map<std::string, std::vector<std::string>> deps;  // subsystem -> deps
  std::map<std::string, std::size_t> dep_lines;
};

/// Parse a contract file. Returns false with `error` set on a malformed
/// file (usage error — exit 2), not on contract-vs-tree drift (that is a
/// finding, produced by the passes).
bool parse_lock_order_contract(const std::filesystem::path& path,
                               LockOrderContract& out, std::string& error);
bool parse_layers_contract(const std::filesystem::path& path,
                           LayersContract& out, std::string& error);

struct GraphEdge {
  std::string from;
  std::string to;
  std::string file;  // witness site
  std::size_t line = 0;
  std::string via;  // callee chain for indirect edges, "" for direct
};

struct AnalysisResult {
  std::vector<Finding> findings;  // waived ones included, flagged
  std::vector<std::string> lock_nodes;  // every real lock id observed
  std::vector<GraphEdge> lock_edges;    // deduped observed acquisition edges
  std::vector<GraphEdge> layer_edges;   // observed subsystem include edges
};

AnalysisResult run_analysis(const Model& model,
                            const std::vector<SourceFile>& files,
                            const LockOrderContract& locks,
                            const LayersContract& layers);

void write_lock_dot(std::ostream& os, const AnalysisResult& result,
                    const LockOrderContract& contract);
void write_layers_dot(std::ostream& os, const AnalysisResult& result,
                      const LayersContract& contract);

}  // namespace desh::analyze
