#include "source.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>

namespace desh::analyze {

namespace fs = std::filesystem;

ScrubbedLine Scrubber::scrub(const std::string& line) {
  ScrubbedLine out;
  out.code.reserve(line.size());
  std::string current_string;
  enum class State { kCode, kString, kChar, kBlockComment };
  State state = in_block_ ? State::kBlockComment : State::kCode;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    const char next = i + 1 < line.size() ? line[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          out.comment += line.substr(i + 2);
          i = line.size();
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          out.code += '"';
          state = State::kString;
          current_string.clear();
        } else if (c == '\'') {
          out.code += '\'';
          state = State::kChar;
        } else {
          out.code += c;
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          current_string += c;
          current_string += next;
          ++i;
        } else if (c == '"') {
          out.code += '"';
          out.strings.push_back(current_string);
          state = State::kCode;
        } else {
          current_string += c;
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          ++i;
        } else if (c == '\'') {
          out.code += '\'';
          state = State::kCode;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          out.comment += c;
        }
        break;
    }
  }
  in_block_ = state == State::kBlockComment;
  // An unterminated string at end-of-line (multi-line concatenation does
  // not exist for plain literals) — treat as closed.
  if (state == State::kString) out.strings.push_back(current_string);
  return out;
}

bool read_file(const fs::path& path, std::vector<std::string>& lines) {
  std::ifstream is(path);
  if (!is) return false;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return true;
}

bool load_tree(const fs::path& root, const std::string& subdir,
               const char* tool, std::vector<SourceFile>& out) {
  const fs::path src = root / subdir;
  if (!fs::is_directory(src)) {
    std::cerr << tool << ": no " << subdir << "/ under " << root << "\n";
    return false;
  }
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".h")
      paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    SourceFile f;
    f.rel_path = fs::relative(p, root).generic_string();
    if (!read_file(p, f.raw)) {
      std::cerr << tool << ": cannot read " << p << "\n";
      return false;
    }
    Scrubber scrubber;
    f.lines.reserve(f.raw.size());
    for (const std::string& line : f.raw)
      f.lines.push_back(scrubber.scrub(line));
    out.push_back(std::move(f));
  }
  return true;
}

std::vector<std::size_t> find_tokens(const std::string& code,
                                     const std::string& needle) {
  std::vector<std::size_t> hits;
  for (std::size_t pos = code.find(needle); pos != std::string::npos;
       pos = code.find(needle, pos + 1)) {
    auto is_ident = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    const bool left_ok = pos == 0 || (!is_ident(code[pos - 1]) &&
                                      code[pos - 1] != ':');
    const std::size_t end = pos + needle.size();
    const bool right_ok = end >= code.size() || !is_ident(code[end]);
    if (left_ok && right_ok) hits.push_back(pos);
  }
  return hits;
}

std::vector<std::string> desh_tokens(const std::string& text) {
  std::vector<std::string> out;
  const std::string prefix = "desh_";
  for (std::size_t pos = text.find(prefix); pos != std::string::npos;
       pos = text.find(prefix, pos + 1)) {
    if (pos > 0) {
      const char before = text[pos - 1];
      if (std::isalnum(static_cast<unsigned char>(before)) || before == '_')
        continue;
    }
    std::size_t end = pos;
    while (end < text.size() &&
           (std::islower(static_cast<unsigned char>(text[end])) ||
            std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '_'))
      ++end;
    if (end < text.size() && text[end] == '.') continue;
    out.push_back(text.substr(pos, end - pos));
  }
  return out;
}

bool waiver_comment(const SourceFile& f, std::size_t idx, const char* tool,
                    const std::string& rule) {
  const std::string needle = std::string(tool) + ": allow(" + rule + ")";
  if (f.lines[idx].comment.find(needle) != std::string::npos) return true;
  return idx > 0 &&
         f.lines[idx - 1].comment.find(needle) != std::string::npos;
}

namespace {
bool justified_in(const std::string& comment, const std::string& needle) {
  const std::size_t pos = comment.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t rest = comment.find_first_not_of(
      " \t-—:", pos + needle.size());
  return rest != std::string::npos;
}
}  // namespace

bool waiver_with_reason(const SourceFile& f, std::size_t idx,
                        const char* tool, const std::string& rule) {
  const std::string needle = std::string(tool) + ": allow(" + rule + ")";
  if (justified_in(f.lines[idx].comment, needle)) return true;
  // Walk the contiguous block of comment-only lines directly above the
  // site, so a waiver may wrap to the repo's comment width.
  for (std::size_t j = idx; j > 0; --j) {
    const ScrubbedLine& above = f.lines[j - 1];
    if (above.comment.empty() ||
        above.code.find_first_not_of(" \t") != std::string::npos)
      break;
    if (justified_in(above.comment, needle)) return true;
  }
  return false;
}

}  // namespace desh::analyze
