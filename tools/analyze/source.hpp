// Shared source-loading layer for the repo's static-analysis tools
// (tools/desh_lint and tools/desh_analyze): a comment/literal scrubber, the
// scanned-file representation, token search helpers, and the waiver-comment
// convention. Extracted from desh_lint (PR 5) so both tools tokenize the
// tree identically — a line the linter sees as code is exactly the line the
// analyzer sees as code.
//
// Standard-library-only on purpose: the tools must build before (and
// independently of) every desh library they audit.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

namespace desh::analyze {

/// One source line split into the three views the checks need.
struct ScrubbedLine {
  std::string code;     // comments and literal *contents* blanked out
  std::string comment;  // concatenated comment text on this line
  std::vector<std::string> strings;  // string-literal contents, in order
};

/// Strips comments and literals, tracking block-comment state across lines.
/// Raw strings and digit separators are rare enough in this tree to ignore.
class Scrubber {
 public:
  ScrubbedLine scrub(const std::string& line);

 private:
  bool in_block_ = false;
};

struct SourceFile {
  std::string rel_path;             // '/'-separated, repo-relative
  std::vector<std::string> raw;     // original lines
  std::vector<ScrubbedLine> lines;  // scrubbed views, same indexing
};

/// Reads `path` into `lines`, normalizing CRLF. Returns false on I/O error.
bool read_file(const std::filesystem::path& path,
               std::vector<std::string>& lines);

/// Loads and scrubs every .cpp/.hpp/.h under `root`/`subdir`, sorted by
/// path. Returns false (with a message on stderr prefixed `tool`) when the
/// directory is missing or a file cannot be read.
bool load_tree(const std::filesystem::path& root, const std::string& subdir,
               const char* tool, std::vector<SourceFile>& out);

/// All start positions where `needle` occurs in `code` as a whole token.
/// For qualified names (std::mutex) the boundary check applies to the ends
/// of the full spelling.
std::vector<std::size_t> find_tokens(const std::string& code,
                                     const std::string& needle);

/// Every `desh_*` lower_snake token in `text` (metric-name extraction).
/// A '.' right after the token means a file name, not a metric family.
std::vector<std::string> desh_tokens(const std::string& text);

/// True when line `idx` (or the line above) carries a waiver comment of the
/// form `<tool>: allow(<rule>)`, e.g. `desh-lint: allow(raw-sync)`.
bool waiver_comment(const SourceFile& f, std::size_t idx, const char* tool,
                    const std::string& rule);

/// Like waiver_comment, but the waiver only counts when followed by a
/// non-empty justification: `desh-analyze: allow(blocking-under-lock)
/// deliberate checkpoint flush`. A bare allow() is ignored — desh_analyze
/// waivers must say why. The waiver may sit on the flagged line or anywhere
/// in the contiguous comment-only block directly above it.
bool waiver_with_reason(const SourceFile& f, std::size_t idx,
                        const char* tool, const std::string& rule);

}  // namespace desh::analyze
