// desh_lint — the repo-specific static checker behind `ctest -L lint`.
//
// Enforces the project conventions that a generic compiler/tidy pass cannot
// express, by tokenizing every file under <root>/src:
//
//   metric-catalog     every `desh_*` metric string used in code exists in
//                      src/obs/catalog.hpp AND OBSERVABILITY.md, and every
//                      catalog/doc name is real (no rot in either direction).
//                      The desh_span_seconds family (emitted directly by
//                      obs/export.cpp, not a registry metric) and the
//                      _bucket/_sum/_count histogram suffixes are understood.
//   throw-discipline   `throw` requires an explicit waiver: the error
//                      taxonomy is core::Expected; the only sanctioned
//                      throwers are the legacy serialization helpers and the
//                      [[deprecated]] compatibility wrappers, each of which
//                      carries a waiver comment naming this rule.
//   raw-sync           std::mutex / std::lock_guard / std::unique_lock /
//                      std::condition_variable / std::scoped_lock /
//                      std::shared_mutex appear only inside util/sync.hpp —
//                      everything else locks through the annotated wrappers.
//   rng-discipline     no std::rand / srand / std::random_device /
//                      time(nullptr) seeding outside util/rng: randomness is
//                      deterministic and seeded explicitly (PR-1 guarantee).
//   include-first      every src .cpp whose sibling header exists includes
//                      that header FIRST, so each header is proven
//                      self-contained by its own translation unit.
//   ordering-comment   every non-seq_cst std::memory_order_* argument
//                      carries a justifying comment containing "ordering:"
//                      on the same line or directly above the contiguous
//                      block of atomic statements it belongs to.
//   wal-expected       no `throw` anywhere under src/wal/: the durability
//                      boundary reports I/O failures as core::Expected so a
//                      half-applied recovery can never unwind past it. This
//                      rule is NON-WAIVABLE — an allow() comment is ignored.
//   public-throw       no `throw` in any header under src/, nor anywhere
//                      under src/logs/ (headers AND .cpp — the subsystem
//                      backs desh::ingest's streaming pump, which must
//                      never unwind mid-stream) — a throwing public entry
//                      point leaks exceptions across the Expected error
//                      taxonomy. util/error.hpp (where the sanctioned
//                      exception types and util::require live) and
//                      src/wal/ (owned by wal-expected) are the only
//                      exclusions. This rule is NON-WAIVABLE — the
//                      deprecated throwing wrappers it existed to tolerate
//                      have been deleted, so no waiver is ever legitimate.
//
// Waivers: a comment containing `desh-lint: allow(<rule>)` on the same line
// or the line above suppresses that rule for that line (every rule except
// wal-expected and public-throw).
//
// Usage: desh_lint [--root <repo-root>] [--json] [--rules]
// Exit:  0 = clean, 1 = findings, 2 = usage/configuration error.
// --json prints a machine-readable findings array in the schema shared with
// desh_analyze (stable field order: rule, file, line, severity, waived,
// message) to stdout; the default is one `file:line: [rule] message` text
// line per finding. --rules prints every rule name this tool can emit, one
// per line (the docs check pins each to a DESIGN.md mention).
//
// Tokenization (scrubber, file loading, waiver comments) lives in
// tools/analyze/source.hpp, shared with desh_analyze — a line this linter
// sees as code is exactly the line the analyzer sees as code.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "../analyze/finding.hpp"
#include "../analyze/source.hpp"

namespace fs = std::filesystem;

namespace {

using desh::analyze::desh_tokens;
using desh::analyze::find_tokens;
using desh::analyze::Finding;
using desh::analyze::read_file;
using desh::analyze::ScrubbedLine;
using desh::analyze::SourceFile;

// Every rule desh_lint can emit; the docs check pins each name to a
// DESIGN.md mention.
constexpr const char* kRuleNames[] = {
    "metric-catalog",   "throw-discipline", "raw-sync",
    "rng-discipline",   "include-first",    "ordering-comment",
    "wal-expected",     "public-throw",
};

bool waived(const SourceFile& f, std::size_t idx, const std::string& rule) {
  return desh::analyze::waiver_comment(f, idx, "desh-lint", rule);
}

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  bool load() {
    return desh::analyze::load_tree(root_, "src", "desh_lint", files_);
  }

  void run() {
    check_metric_catalog();
    for (const SourceFile& f : files_) {
      check_throw_discipline(f);
      check_raw_sync(f);
      check_rng_discipline(f);
      check_include_first(f);
      check_ordering_comment(f);
      check_wal_expected(f);
      check_public_throw(f);
    }
    desh::analyze::sort_findings(findings_);
  }

  const std::vector<Finding>& findings() const { return findings_; }

 private:
  void push(const std::string& rule, const std::string& file,
            std::size_t line, std::string message) {
    Finding finding;
    finding.rule = rule;
    finding.file = file;
    finding.line = line;
    finding.message = std::move(message);
    findings_.push_back(std::move(finding));
  }

  void add(const SourceFile& f, std::size_t idx, const std::string& rule,
           std::string message) {
    if (waived(f, idx, rule)) return;
    push(rule, f.rel_path, idx + 1, std::move(message));
  }

  const SourceFile* file(const std::string& rel) const {
    for (const SourceFile& f : files_)
      if (f.rel_path == rel) return &f;
    return nullptr;
  }

  // -- metric-catalog -------------------------------------------------------

  static bool span_family(const std::string& name) {
    return name == "desh_span_seconds" ||
           name.rfind("desh_span_seconds_", 0) == 0;
  }

  /// Strips one prometheus histogram suffix if doing so lands on `names`.
  static std::string normalize(const std::string& name,
                               const std::set<std::string>& names) {
    if (names.count(name)) return name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string base = name.substr(0, name.size() - s.size());
        if (names.count(base)) return base;
      }
    }
    return name;
  }

  void check_metric_catalog() {
    const std::string catalog_rel = "src/obs/catalog.hpp";
    const SourceFile* catalog = file(catalog_rel);
    if (catalog == nullptr) {
      push("metric-catalog", catalog_rel, 0,
           "catalog file missing — cannot cross-check metric names");
      return;
    }
    // Catalog = every desh_* string literal in catalog.hpp.
    std::set<std::string> catalog_names;
    std::map<std::string, std::size_t> catalog_lines;
    for (std::size_t i = 0; i < catalog->lines.size(); ++i)
      for (const std::string& literal : catalog->lines[i].strings)
        for (const std::string& t : desh_tokens(literal)) {
          catalog_names.insert(t);
          catalog_lines.emplace(t, i + 1);
        }

    // Doc = every desh_* token in OBSERVABILITY.md. `desh_lint` names this
    // tool, not a metric.
    std::vector<std::string> doc_raw;
    const fs::path doc_path = root_ / "OBSERVABILITY.md";
    if (!read_file(doc_path, doc_raw)) {
      push("metric-catalog", "OBSERVABILITY.md", 0,
           "OBSERVABILITY.md missing — metric names must be documented "
           "there");
      return;
    }
    std::set<std::string> doc_names;
    std::map<std::string, std::size_t> doc_lines;
    for (std::size_t i = 0; i < doc_raw.size(); ++i)
      for (const std::string& t : desh_tokens(doc_raw[i])) {
        if (t == "desh_lint" || t == "desh_analyze" || t == "desh_")
          continue;
        doc_names.insert(t);
        doc_lines.emplace(t, i + 1);
      }

    // 1. Every catalog name is documented.
    for (const std::string& name : catalog_names)
      if (!doc_names.count(name))
        push("metric-catalog", catalog_rel, catalog_lines[name],
             "metric '" + name +
                 "' is in the catalog but not documented in "
                 "OBSERVABILITY.md");
    // 2. Every doc token resolves to a catalog name (modulo histogram
    //    suffixes) or the span family.
    for (const std::string& name : doc_names) {
      if (span_family(name)) continue;
      if (!catalog_names.count(normalize(name, catalog_names)))
        push("metric-catalog", "OBSERVABILITY.md", doc_lines[name],
             "documented metric '" + name +
                 "' does not exist in src/obs/catalog.hpp");
    }
    // 3. Every desh_* literal used by code is a real catalog name.
    for (const SourceFile& f : files_) {
      if (f.rel_path == catalog_rel) continue;
      for (std::size_t i = 0; i < f.lines.size(); ++i)
        for (const std::string& literal : f.lines[i].strings)
          for (const std::string& t : desh_tokens(literal)) {
            if (span_family(t)) continue;
            if (!catalog_names.count(normalize(t, catalog_names)))
              add(f, i, "metric-catalog",
                  "metric string '" + t +
                      "' is not declared in src/obs/catalog.hpp");
          }
    }
  }

  // -- throw-discipline -----------------------------------------------------

  void check_throw_discipline(const SourceFile& f) {
    for (std::size_t i = 0; i < f.lines.size(); ++i)
      if (!find_tokens(f.lines[i].code, "throw").empty())
        add(f, i, "throw-discipline",
            "`throw` outside the sanctioned legacy paths — return "
            "core::Expected, or waive with a comment naming this rule");
  }

  // -- raw-sync -------------------------------------------------------------

  void check_raw_sync(const SourceFile& f) {
    if (f.rel_path == "src/util/sync.hpp") return;  // the one wrapper site
    static const char* kPrimitives[] = {
        "std::mutex",          "std::lock_guard",   "std::unique_lock",
        "std::condition_variable", "std::scoped_lock", "std::shared_mutex",
        "std::shared_lock",    "std::recursive_mutex"};
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::string& code = f.lines[i].code;
      if (code.find("#include") != std::string::npos) continue;
      for (const char* primitive : kPrimitives)
        if (!find_tokens(code, primitive).empty())
          add(f, i, "raw-sync",
              std::string(primitive) +
                  " outside util/sync.hpp — use util::Mutex / "
                  "util::LockGuard / util::UniqueLock / util::CondVar");
    }
  }

  // -- rng-discipline -------------------------------------------------------

  void check_rng_discipline(const SourceFile& f) {
    if (f.rel_path == "src/util/rng.hpp" ||
        f.rel_path == "src/util/rng.cpp")
      return;
    static const char* kSources[] = {"std::rand", "srand",
                                     "std::random_device",
                                     "random_device"};
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::string& code = f.lines[i].code;
      for (const char* source : kSources)
        if (!find_tokens(code, source).empty()) {
          add(f, i, "rng-discipline",
              std::string(source) +
                  " outside util/rng — randomness must be deterministic "
                  "and explicitly seeded (util::Rng)");
          break;  // one finding per line even if both spellings match
        }
      if (code.find("time(nullptr)") != std::string::npos ||
          code.find("time(NULL)") != std::string::npos)
        add(f, i, "rng-discipline",
            "wall-clock seeding (time(nullptr)) outside util/rng breaks "
            "reproducibility");
    }
  }

  // -- include-first --------------------------------------------------------

  void check_include_first(const SourceFile& f) {
    if (f.rel_path.size() < 4 ||
        f.rel_path.compare(f.rel_path.size() - 4, 4, ".cpp") != 0)
      return;
    const std::string hpp_rel =
        f.rel_path.substr(0, f.rel_path.size() - 4) + ".hpp";
    if (file(hpp_rel) == nullptr) return;  // no sibling header to prove
    // The expected spelling is the src/-relative path ("obs/metrics.hpp").
    const std::string expected = hpp_rel.substr(std::string("src/").size());
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::string& code = f.lines[i].code;
      const std::size_t pos = code.find("#include");
      if (pos == std::string::npos) continue;
      const bool first_is_own =
          !f.lines[i].strings.empty() && f.lines[i].strings[0] == expected;
      if (!first_is_own)
        add(f, i, "include-first",
            "first include must be the file's own header \"" + expected +
                "\" so that header is proven self-contained");
      return;  // only the first include directive matters
    }
  }

  // -- ordering-comment -----------------------------------------------------

  /// Lines the upward scan for a justifying comment may step over: blank
  /// or comment-only lines, sibling atomic statements in the same run, and
  /// loop headers / lone braces around them. One "ordering:" comment covers
  /// the whole contiguous block of atomics it precedes.
  static bool transparent(const ScrubbedLine& line) {
    std::string code = line.code;
    code.erase(std::remove_if(code.begin(), code.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               code.end());
    if (code.empty()) return true;
    if (code.find("memory_order") != std::string::npos) return true;
    if (code.rfind("for(", 0) == 0 || code.rfind("while(", 0) == 0)
      return true;
    if (code.back() == '=') return true;  // assignment continues below
    return code.find_first_not_of("{}();") == std::string::npos;
  }

  void check_ordering_comment(const SourceFile& f) {
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::string& code = f.lines[i].code;
      const std::size_t pos = code.find("std::memory_order_");
      if (pos == std::string::npos) continue;
      if (code.find("std::memory_order_seq_cst") != std::string::npos)
        continue;  // the safe default needs no justification
      bool justified =
          f.lines[i].comment.find("ordering:") != std::string::npos;
      for (std::size_t j = i, steps = 0; !justified && j > 0 && steps < 12;
           ++steps) {
        --j;
        if (f.lines[j].comment.find("ordering:") != std::string::npos) {
          justified = true;
        } else if (!transparent(f.lines[j])) {
          break;  // unrelated code: the comment above it covers that, not us
        }
      }
      if (!justified)
        add(f, i, "ordering-comment",
            "non-seq_cst memory ordering without a justifying "
            "\"ordering:\" comment on or directly above the statement");
    }
  }

  // -- wal-expected ---------------------------------------------------------

  /// src/wal is the crash-consistency boundary: an exception escaping an
  /// I/O error path can abort recovery with state half-applied, which is
  /// exactly the failure mode the WAL exists to rule out. Findings are
  /// pushed directly — NOT through add() — so `desh-lint: allow(...)`
  /// comments cannot waive this rule.
  void check_wal_expected(const SourceFile& f) {
    if (f.rel_path.rfind("src/wal/", 0) != 0) return;
    for (std::size_t i = 0; i < f.lines.size(); ++i)
      if (!find_tokens(f.lines[i].code, "throw").empty())
        push("wal-expected", f.rel_path, i + 1,
             "`throw` inside src/wal — I/O error paths must return "
             "core::Expected; this rule cannot be waived");
  }

  // -- public-throw ---------------------------------------------------------

  /// Headers are the public surface: a `throw` in one is a throwing entry
  /// point every includer inherits, bypassing the core::Expected taxonomy.
  /// src/logs is held to the stricter whole-subsystem standard (headers AND
  /// .cpp files): it feeds desh::ingest's streaming frontend, whose pump
  /// must never unwind mid-stream, so every logs entry point reports
  /// failures as core::Expected (sanctioned util::require asserts excepted
  /// — `throw` is banned as a token, not as a behavior).
  /// util/error.hpp hosts the sanctioned exception types plus
  /// util::require, and src/wal is policed (more strictly) by
  /// wal-expected. Findings are pushed directly — NOT through add() — so
  /// `desh-lint: allow(...)` comments cannot waive this rule: the
  /// deprecated throwing wrappers this rule once had to tolerate are gone.
  void check_public_throw(const SourceFile& f) {
    const bool header =
        (f.rel_path.size() > 4 &&
         f.rel_path.compare(f.rel_path.size() - 4, 4, ".hpp") == 0) ||
        (f.rel_path.size() > 2 &&
         f.rel_path.compare(f.rel_path.size() - 2, 2, ".h") == 0);
    const bool logs_subsystem = f.rel_path.rfind("src/logs/", 0) == 0;
    if (!header && !logs_subsystem) return;
    if (f.rel_path == "src/util/error.hpp") return;
    if (f.rel_path.rfind("src/wal/", 0) == 0) return;
    for (std::size_t i = 0; i < f.lines.size(); ++i)
      if (!find_tokens(f.lines[i].code, "throw").empty())
        push("public-throw", f.rel_path, i + 1,
             "`throw` in a public header — entry points report failures "
             "as core::Expected; this rule cannot be waived");
  }

  fs::path root_;
  std::vector<SourceFile> files_;
  std::vector<Finding> findings_;
};

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--rules") {
      for (const char* rule : kRuleNames) std::cout << rule << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: desh_lint [--root <repo-root>] [--json] "
                   "[--rules]\n";
      return 0;
    } else {
      std::cerr << "desh_lint: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  Linter linter(root);
  if (!linter.load()) return 2;
  linter.run();

  const std::vector<Finding>& findings = linter.findings();
  if (json) {
    std::cout << "[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      std::cout << (i ? ",\n " : "\n ");
      desh::analyze::write_finding_json(std::cout, findings[i]);
    }
    std::cout << (findings.empty() ? "]\n" : "\n]\n");
  } else {
    for (const Finding& f : findings)
      desh::analyze::write_finding_text(std::cout, f);
    if (!findings.empty())
      std::cout << "desh_lint: " << findings.size() << " finding"
                << (findings.size() == 1 ? "" : "s") << "\n";
  }
  return findings.empty() ? 0 : 1;
}
